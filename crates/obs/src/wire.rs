//! Versioned wire representation: a dependency-free JSON document
//! model shared by every machine-readable surface of the workspace.
//!
//! The JSONL trace format ([`crate::jsonl`]) is deliberately flat;
//! the service and metrics surfaces need *nested* documents (hit
//! arrays, per-worker breakdowns, histogram buckets), so this module
//! provides the general tree: [`JsonValue`] with a strict recursive
//! parser and a canonical renderer. On top of it sit the conventions
//! every wire document follows:
//!
//! * **Versioning** — top-level objects carry
//!   `"schema_version": `[`SCHEMA_VERSION`] as their first key.
//!   [`versioned`] stamps it, [`check_version`] enforces it on the
//!   way back in, so consumers fail loudly on a future format bump
//!   instead of misreading fields.
//! * **Error envelopes** — errors are objects with a stable string
//!   `"code"` plus a human `"message"` ([`error_envelope`]); typed
//!   detail fields ride alongside. The CLI and the server emit the
//!   same objects, which is what makes partial-result reporting
//!   uniform across exit paths.
//! * **Lossless histograms** — [`histogram_to_wire`] serializes the
//!   occupied log2 buckets (not just the summary quantiles), and
//!   [`histogram_from_wire`] rebuilds a bit-identical [`Histogram`]
//!   via [`Histogram::from_parts`]. Summary fields (`mean`, `p50`,
//!   …) are still included for humans but are derived on output and
//!   ignored on input.
//!
//! Object key order is preserved (objects are `Vec<(String, value)>`,
//! not maps) so rendered documents are deterministic and
//! schema-stability tests can pin exact byte output.

use std::fmt;

use crate::hist::Histogram;

/// Version stamp carried by every top-level wire object.
///
/// Bump this only with a migration story: consumers reject documents
/// whose version they do not understand.
pub const SCHEMA_VERSION: u64 = 1;

/// Maximum nesting depth the parser accepts. Deep enough for any
/// real document, shallow enough that hostile input cannot blow the
/// stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON document.
///
/// Integers keep their signedness (`UInt` for non-negative, `Int`
/// for negative) so the full `u64` range survives — metrics counters
/// like `cells` can exceed `2^53` and must not round-trip through
/// `f64`. Equality compares numbers by value, not by variant, since
/// the renderer prints `2.0_f64` as `2` and a re-parse yields
/// `UInt(2)`.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Negative integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Any number written with a fraction or exponent, or outside
    /// the 64-bit integer ranges.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, in insertion order (duplicate keys are a parse error).
    Object(Vec<(String, JsonValue)>),
}

impl PartialEq for JsonValue {
    fn eq(&self, other: &Self) -> bool {
        use JsonValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (a, b) => match (a.integer_value(), b.integer_value()) {
                (Some(x), Some(y)) => x == y,
                // At least one side is a float (or a non-number):
                // compare as f64 when both are numbers.
                _ => match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                },
            },
        }
    }
}

/// Why a wire document failed to parse or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    /// Construct from anything displayable.
    pub fn new(msg: impl Into<String>) -> Self {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl JsonValue {
    /// Exact integer value, if this is an integer variant.
    fn integer_value(&self) -> Option<i128> {
        match self {
            JsonValue::Int(i) => Some(*i as i128),
            JsonValue::UInt(u) => Some(*u as i128),
            _ => None,
        }
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Non-negative integer view (accepts `UInt`, non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric view: any integer or float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (ordered field list).
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(input: &str) -> Result<JsonValue, WireError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            input,
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(WireError::new(format!(
                "trailing garbage at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }

    /// Render to compact JSON (no whitespace, preserved key order).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.render_into(&mut out);
        out
    }

    /// Append compact JSON to `out`.
    pub fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            JsonValue::UInt(u) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{f}"));
                } else {
                    // JSON has no NaN/Inf; degrade to null rather
                    // than emit an unparseable token.
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        JsonValue::UInt(u)
    }
}
impl From<u32> for JsonValue {
    fn from(u: u32) -> Self {
        JsonValue::UInt(u as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::UInt(u as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        if i >= 0 {
            JsonValue::UInt(i as u64)
        } else {
            JsonValue::Int(i)
        }
    }
}
impl From<i32> for JsonValue {
    fn from(i: i32) -> Self {
        JsonValue::from(i as i64)
    }
}
impl From<f64> for JsonValue {
    fn from(f: f64) -> Self {
        JsonValue::Float(f)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> Self {
        JsonValue::Array(items)
    }
}

/// Build an object from `(key, value)` pairs (order preserved).
pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Build a top-level object: `schema_version` first, then `fields`.
pub fn versioned(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut all = Vec::with_capacity(fields.len() + 1);
    all.push((
        "schema_version".to_string(),
        JsonValue::UInt(SCHEMA_VERSION),
    ));
    all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    JsonValue::Object(all)
}

/// Reject documents from a different schema generation.
pub fn check_version(v: &JsonValue) -> Result<(), WireError> {
    match u64_field(v, "schema_version") {
        Ok(SCHEMA_VERSION) => Ok(()),
        Ok(other) => Err(WireError::new(format!(
            "unsupported schema_version {other} (this build speaks {SCHEMA_VERSION})"
        ))),
        Err(_) => Err(WireError::new("missing schema_version")),
    }
}

/// Standard versioned error envelope:
/// `{"schema_version":1,"error":{"code":…,"message":…}}`.
///
/// `code` is the stable machine-readable discriminator; `message` is
/// for humans and carries no stability promise.
pub fn error_envelope(code: &str, message: &str) -> JsonValue {
    versioned(vec![(
        "error",
        obj(vec![("code", code.into()), ("message", message.into())]),
    )])
}

/// Required-field accessor: the object's `key` as a `&JsonValue`.
pub fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(format!("missing field {key:?}")))
}

/// Required `u64` field.
pub fn u64_field(v: &JsonValue, key: &str) -> Result<u64, WireError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| WireError::new(format!("field {key:?} is not a non-negative integer")))
}

/// Required `i64` field.
pub fn i64_field(v: &JsonValue, key: &str) -> Result<i64, WireError> {
    field(v, key)?
        .as_i64()
        .ok_or_else(|| WireError::new(format!("field {key:?} is not an integer")))
}

/// Required numeric field.
pub fn f64_field(v: &JsonValue, key: &str) -> Result<f64, WireError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| WireError::new(format!("field {key:?} is not a number")))
}

/// Required boolean field.
pub fn bool_field(v: &JsonValue, key: &str) -> Result<bool, WireError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| WireError::new(format!("field {key:?} is not a boolean")))
}

/// Required string field.
pub fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, WireError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| WireError::new(format!("field {key:?} is not a string")))
}

/// Required array field.
pub fn array_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], WireError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| WireError::new(format!("field {key:?} is not an array")))
}

/// Lossless histogram serialization: summary fields for humans plus
/// the exact occupied `[upper_bound, count]` buckets for round-trip.
pub fn histogram_to_wire(h: &Histogram) -> JsonValue {
    let buckets: Vec<JsonValue> = h
        .occupied()
        .map(|(upper, count)| JsonValue::Array(vec![upper.into(), count.into()]))
        .collect();
    obj(vec![
        ("count", h.count().into()),
        ("sum", h.sum().into()),
        ("max", h.max_value().into()),
        ("mean", h.mean().into()),
        ("p50", h.p50().into()),
        ("p90", h.p90().into()),
        ("p99", h.p99().into()),
        ("p999", h.p999().into()),
        ("buckets", JsonValue::Array(buckets)),
    ])
}

/// Rebuild a [`Histogram`] bit-identically from its wire form.
///
/// Summary fields other than `sum`/`max` are derived on output and
/// ignored here; the buckets carry the authoritative counts.
pub fn histogram_from_wire(v: &JsonValue) -> Result<Histogram, WireError> {
    let sum = u64_field(v, "sum")?;
    let max = u64_field(v, "max")?;
    let mut buckets = Vec::new();
    for (i, pair) in array_field(v, "buckets")?.iter().enumerate() {
        let pair = pair
            .as_array()
            .ok_or_else(|| WireError::new(format!("bucket {i} is not an array")))?;
        if pair.len() != 2 {
            return Err(WireError::new(format!(
                "bucket {i} is not an [upper, count] pair"
            )));
        }
        let upper = pair[0]
            .as_u64()
            .ok_or_else(|| WireError::new(format!("bucket {i} upper bound is not a u64")))?;
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| WireError::new(format!("bucket {i} count is not a u64")))?;
        buckets.push((upper, count));
    }
    Histogram::from_parts(buckets, sum, max)
        .ok_or_else(|| WireError::new("inconsistent histogram buckets"))
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Strict recursive-descent parser over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, why: &str) -> WireError {
        WireError::new(format!("{why} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.input[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat("null") => Ok(JsonValue::Null),
            Some(c) if *c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.pos += 1; // '{'
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.input[self.pos..];
                    let c = rest.chars().next().ok_or_else(|| self.err("bad utf8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Decode one `\u` escape. Entered with `self.pos` on the `u`,
    /// exits on the last consumed hex digit. Reassembles UTF-16
    /// surrogate pairs (`\ud83d\ude00` → U+1F600), which standard
    /// encoders must emit for non-BMP characters; lone surrogates
    /// are errors.
    fn unicode_escape(&mut self) -> Result<char, WireError> {
        let high = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&high) {
            return Err(self.err("unpaired low surrogate in \\u escape"));
        }
        if !(0xD800..=0xDBFF).contains(&high) {
            return char::from_u32(high).ok_or_else(|| self.err("bad \\u codepoint"));
        }
        // High surrogate: the next escape must carry the low half.
        if self.bytes.get(self.pos + 1) != Some(&b'\\')
            || self.bytes.get(self.pos + 2) != Some(&b'u')
        {
            return Err(self.err("unpaired high surrogate in \\u escape"));
        }
        self.pos += 2;
        let low = self.hex4()?;
        if !(0xDC00..=0xDFFF).contains(&low) {
            return Err(self.err("bad low surrogate in \\u escape"));
        }
        let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
        char::from_u32(code).ok_or_else(|| self.err("bad \\u codepoint"))
    }

    /// Read the 4 hex digits of a `\u` escape. Entered with
    /// `self.pos` on the `u`, exits on the last digit. Validated on
    /// the byte level first: an escape that is truncated or runs into
    /// a multibyte UTF-8 character is a typed error, never a
    /// non-boundary slice panic.
    fn hex4(&mut self) -> Result<u32, WireError> {
        let hex = match self.bytes.get(self.pos + 1..self.pos + 5) {
            Some(hex) if hex.iter().all(u8::is_ascii_hexdigit) => hex,
            _ => return Err(self.err("bad \\u escape")),
        };
        let code = hex.iter().fold(0u32, |acc, &b| {
            (acc << 4) | (b as char).to_digit(16).expect("ascii hex digit")
        });
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, WireError> {
        let start = self.pos;
        let negative = self.bytes.get(self.pos) == Some(&b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a":[1,-2,3.5,true,null],"b":{"c":"x\ny","d":[]},"e":18446744073709551615}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(str_field(v.get("b").unwrap(), "c").unwrap(), "x\ny");
        assert_eq!(u64_field(&v, "e").unwrap(), u64::MAX);
        // Render → parse is a fixpoint.
        let rendered = v.render();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{\"a\":1} tail",
            "\"unterminated",
            "nul",
            "{\"a\":1,\"a\":2}",
            "--3",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_keep_full_u64_precision() {
        let big = u64::MAX - 1;
        let v = JsonValue::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        // A float that happens to be integral parses back as an
        // integer variant but still compares equal.
        assert_eq!(JsonValue::Float(2.0), JsonValue::UInt(2));
        assert_eq!(
            JsonValue::parse(&JsonValue::Float(2.0).render()).unwrap(),
            JsonValue::Float(2.0)
        );
    }

    #[test]
    fn versioned_objects_round_trip_and_reject_other_versions() {
        let v = versioned(vec![("x", 7u64.into())]);
        let rendered = v.render();
        assert!(rendered.starts_with("{\"schema_version\":1,"));
        let back = JsonValue::parse(&rendered).unwrap();
        check_version(&back).unwrap();
        assert_eq!(u64_field(&back, "x").unwrap(), 7);

        let future = JsonValue::parse("{\"schema_version\":99}").unwrap();
        assert!(check_version(&future).is_err());
        let missing = JsonValue::parse("{}").unwrap();
        assert!(check_version(&missing).is_err());
    }

    #[test]
    fn error_envelope_shape() {
        let e = error_envelope("overloaded", "queue full");
        let rendered = e.render();
        let back = JsonValue::parse(&rendered).unwrap();
        check_version(&back).unwrap();
        let inner = back.get("error").unwrap();
        assert_eq!(str_field(inner, "code").unwrap(), "overloaded");
        assert_eq!(str_field(inner, "message").unwrap(), "queue full");
    }

    #[test]
    fn histogram_round_trips_bit_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 100_000, u64::MAX] {
            h.record(v);
        }
        let wire = histogram_to_wire(&h);
        let back = histogram_from_wire(&JsonValue::parse(&wire.render()).unwrap()).unwrap();
        assert_eq!(back, h);

        let empty = Histogram::new();
        let back = histogram_from_wire(&histogram_to_wire(&empty)).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn histogram_summaries_survive_the_wire_bit_identically() {
        // The quantile summaries (p50/p90/p99/p999) are derived from
        // the buckets on output and ignored on input. Because the
        // buckets round-trip losslessly, re-encoding the decoded
        // histogram must reproduce the exact same document bytes —
        // summaries included.
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 7, 7, 7, 100, 5_000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let first = histogram_to_wire(&h).render();
        let back = histogram_from_wire(&JsonValue::parse(&first).unwrap()).unwrap();
        let second = histogram_to_wire(&back).render();
        assert_eq!(first, second);
        for key in ["\"p50\":", "\"p90\":", "\"p99\":", "\"p999\":"] {
            assert!(first.contains(key), "{key} missing in {first}");
        }
        assert_eq!(back.p999(), h.p999());
    }

    #[test]
    fn histogram_from_wire_rejects_bad_buckets() {
        // Upper bound 5 is not a log2 bucket boundary.
        let doc = r#"{"sum":5,"max":5,"buckets":[[5,1]]}"#;
        assert!(histogram_from_wire(&JsonValue::parse(doc).unwrap()).is_err());
        // Non-empty sum with no samples.
        let doc = r#"{"sum":5,"max":0,"buckets":[]}"#;
        assert!(histogram_from_wire(&JsonValue::parse(doc).unwrap()).is_err());
    }

    #[test]
    fn string_escapes_survive() {
        let s = "tab\there \\ quote\" ctrl\u{1} unicode\u{e9}";
        let v = JsonValue::Str(s.to_string());
        assert_eq!(JsonValue::parse(&v.render()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn malformed_unicode_escapes_are_errors_not_panics() {
        // Regression: the 4-byte "hex" window after `\u` straddling a
        // multibyte UTF-8 character used to panic on a non-boundary
        // slice — one such JSON-RPC line crashed the stdio daemon.
        for bad in [
            "\"\\u123\u{e9}\"",   // window cuts into a 2-byte char
            "\"\\u12\"",          // terminated mid-escape
            "\"\\u12",            // input ends mid-escape
            "\"\\uZZZZ\"",        // not hex
            "\"\\ud83d\"",        // unpaired high surrogate
            "\"\\ude00\"",        // unpaired low surrogate
            "\"\\ud83d\\u0041\"", // high surrogate + non-surrogate
            "\"\\ud83dxx\"",      // high surrogate, no second escape
            "\"\\ud83d\\n\"",     // high surrogate, wrong escape kind
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pair_escapes_decode_to_non_bmp_chars() {
        // Standard JSON encoders must escape non-BMP characters as
        // UTF-16 surrogate pairs; ids and tenant labels produced by
        // such encoders have to parse.
        let v = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
        let v = JsonValue::parse("\"a\\uD83D\\uDE00z\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("a\u{1f600}z\u{e9}"));
    }
}
