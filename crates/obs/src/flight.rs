//! Always-on flight recorder: the last N request-stage events in a
//! fixed-capacity, lock-free ring.
//!
//! The recorder exists for the moment *after* something went wrong —
//! a dirty drain, a worker panic, a quarantine-respawn — when the
//! question is "what was the daemon doing just now?" and the trace
//! feature may well have been disabled. It therefore has to be cheap
//! enough to leave on unconditionally (the `obs_overhead` bench pins
//! the cost at <1% of the alignment hot path) and readable at any
//! instant without stopping writers.
//!
//! ## Protocol
//!
//! Each slot is a seqlock: a `seq` word plus the event payload as
//! plain atomic words (no `unsafe`, no uninitialized memory). A
//! writer claims ticket `t` from a global cursor, marks slot
//! `t % capacity` busy by storing the odd value `2t+1`, writes the
//! payload words, then seals the slot with the even value `2t+2`.
//! A reader snapshots a slot by loading `seq`, loading the words,
//! and re-loading `seq`: any overlap with a writer changes `seq`
//! (every ticket yields distinct odd/even values), so the reader
//! discards the slot instead of reporting a torn event. One payload
//! word repeats the ticket as a cross-check.
//!
//! ## Honesty bounds
//!
//! The ring overwrites oldest-first; `snapshot` returns whatever
//! consistent slots exist, ordered by ticket. If a writer stalls
//! (e.g. OS preemption) for longer than it takes the rest of the
//! system to lap the entire ring, its late stores could in principle
//! mix with a newer event in the same slot; the seq re-check plus
//! the ticket cross-check make a torn report astronomically
//! unlikely, and a flight recorder tolerates losing an event where
//! it must never block or slow the request path.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::event::{StageKind, TraceEvent};
use crate::jsonl::event_to_json;

/// Default ring capacity (events retained), used by serve.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Payload words per slot: `at_us`, `request`, `stage code`,
/// `dur_us`, `ref_request`, plus the ticket cross-check.
const WORDS: usize = 6;

/// One recorded request-stage event.
///
/// The flat, all-integer shape is what lets the ring store events as
/// atomic words. Conversion to the JSONL trace envelope goes through
/// [`FlightEvent::to_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the owning recorder's epoch (the caller
    /// supplies the clock; the recorder never reads one).
    pub at_us: u64,
    /// Request id the stage belongs to (never 0).
    pub request: u64,
    /// Which lifecycle stage completed.
    pub stage: StageKind,
    /// Stage duration in microseconds.
    pub dur_us: u64,
    /// For `batch_wait` stages: the leader request whose sweep this
    /// request coalesced onto; 0 otherwise.
    pub ref_request: u64,
}

impl FlightEvent {
    /// View as the shared trace-event envelope (for JSONL dumps).
    pub fn to_trace(self) -> TraceEvent {
        TraceEvent::Stage {
            request: self.request,
            stage: self.stage,
            at_us: self.at_us,
            dur_us: self.dur_us,
            ref_request: self.ref_request,
        }
    }
}

#[derive(Debug)]
struct Slot {
    /// 0 = never written; odd = write in progress; even `2t+2` =
    /// sealed by ticket `t`.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; WORDS],
        }
    }
}

/// Fixed-capacity, lock-free ring of the last N [`FlightEvent`]s.
///
/// Writers never block and never allocate; readers never stop
/// writers. See the module docs for the slot protocol.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Capacity mask (capacity is a power of two).
    mask: usize,
    /// Next ticket to assign; also the count of events ever recorded.
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// Ring with [`DEFAULT_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Ring with at least `capacity` slots (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: cap - 1,
            cursor: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the recorder's lifetime (not the number
    /// currently retained, which caps at [`capacity`](Self::capacity)).
    pub fn recorded(&self) -> u64 {
        // ORDER: Relaxed — a monotone statistic; readers only want a
        // recent value, and snapshot consistency comes from the
        // per-slot seq protocol, not from this counter.
        self.cursor.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free and wait-free apart from the slot
    /// stores themselves; overwrites the oldest event once the ring
    /// is full.
    pub fn record(&self, ev: FlightEvent) {
        // ORDER: Relaxed — the ticket only needs to be unique and
        // monotone; all slot-content consistency is carried by the
        // per-slot seq protocol below.
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & self.mask];
        let busy = ticket.wrapping_mul(2).wrapping_add(1);
        // ORDER: Acquire — marks the slot busy before any payload
        // word is written; an RMW with Acquire keeps the word stores
        // below from moving above this claim.
        let _ = slot.seq.swap(busy, Ordering::Acquire);
        // ORDER: Release fence — pairs with the fence in `read_slot`:
        // a reader that saw any payload word stored after this point
        // also sees the busy mark (or a later seq value) on its
        // re-check.
        fence(Ordering::Release);
        let words = [
            ev.at_us,
            ev.request,
            u64::from(ev.stage.code()),
            ev.dur_us,
            ev.ref_request,
            ticket,
        ];
        for (w, v) in slot.words.iter().zip(words) {
            // ORDER: Relaxed — a torn or interleaved payload is
            // detected and discarded by the reader's seq re-check;
            // these stores need no ordering of their own.
            w.store(v, Ordering::Relaxed);
        }
        // ORDER: Release — seals the slot; a reader whose first seq
        // load observes this even value also observes every payload
        // word written above.
        slot.seq.store(busy.wrapping_add(1), Ordering::Release);
    }

    /// Attempt a consistent read of one slot. Returns the sealing
    /// ticket and the decoded event, or `None` for slots that are
    /// empty, mid-write, or overwritten during the read.
    fn read_slot(&self, slot: &Slot) -> Option<(u64, FlightEvent)> {
        // ORDER: Acquire — pairs with the sealing Release store so an
        // even seq implies the payload words below are the sealed
        // ones (unless a later writer intervenes, which the re-check
        // catches).
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let mut words = [0u64; WORDS];
        for (out, w) in words.iter_mut().zip(&slot.words) {
            // ORDER: Relaxed — validated by the seq re-check below;
            // a value from an overlapping writer makes the re-check
            // fail and the slot is skipped.
            *out = w.load(Ordering::Relaxed);
        }
        // ORDER: Acquire fence — orders the payload loads above
        // before the re-check load; pairs with the writer-side fence.
        fence(Ordering::Acquire);
        // ORDER: Relaxed — the fence above already orders this load
        // after the payload loads; equality with the first read is
        // what proves the slot stayed stable.
        let s2 = slot.seq.load(Ordering::Relaxed);
        if s2 != s1 {
            return None;
        }
        let ticket = (s1 / 2).wrapping_sub(1);
        if words[5] != ticket {
            return None;
        }
        let stage = StageKind::from_code(u8::try_from(words[2]).ok()?)?;
        Some((
            ticket,
            FlightEvent {
                at_us: words[0],
                request: words[1],
                stage,
                dur_us: words[3],
                ref_request: words[4],
            },
        ))
    }

    /// Consistent view of the retained events, oldest first. Slots
    /// mid-write or overwritten during the scan are skipped, never
    /// reported torn.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut entries: Vec<(u64, FlightEvent)> = self
            .slots
            .iter()
            .filter_map(|slot| self.read_slot(slot))
            .collect();
        entries.sort_by_key(|(ticket, _)| *ticket);
        entries.into_iter().map(|(_, ev)| ev).collect()
    }

    /// Render the retained events as JSONL (one [`TraceEvent::Stage`]
    /// line per event, oldest first) — the `GET /debug/flight` body
    /// and the stderr post-mortem dump format.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.snapshot() {
            out.push_str(&event_to_json(&ev.to_trace()));
            out.push('\n');
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::read_events;

    fn ev(request: u64, stage: StageKind, at_us: u64) -> FlightEvent {
        FlightEvent {
            at_us,
            request,
            stage,
            dur_us: at_us / 2,
            ref_request: if stage == StageKind::BatchWait {
                request - 1
            } else {
                0
            },
        }
    }

    #[test]
    fn empty_recorder_reports_nothing() {
        let r = FlightRecorder::with_capacity(16);
        assert_eq!(r.capacity(), 16);
        assert_eq!(r.recorded(), 0);
        assert!(r.snapshot().is_empty());
        assert!(r.dump_jsonl().is_empty());
    }

    #[test]
    fn retains_the_last_capacity_events_in_order() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            r.record(ev(i + 1, StageKind::Sweep, i * 10));
        }
        assert_eq!(r.recorded(), 20);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 8, "ring keeps exactly capacity events");
        // The survivors are the 8 newest, oldest first.
        let requests: Vec<u64> = snap.iter().map(|e| e.request).collect();
        assert_eq!(requests, (13..=20).collect::<Vec<u64>>());
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(FlightRecorder::with_capacity(0).capacity(), 8);
        assert_eq!(FlightRecorder::with_capacity(9).capacity(), 16);
        assert_eq!(FlightRecorder::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn events_round_trip_through_the_ring() {
        let r = FlightRecorder::with_capacity(8);
        let original = ev(42, StageKind::BatchWait, 1234);
        r.record(original);
        assert_eq!(r.snapshot(), vec![original]);
    }

    #[test]
    fn dump_is_valid_jsonl_of_stage_events() {
        let r = FlightRecorder::with_capacity(8);
        r.record(ev(7, StageKind::Queue, 5));
        r.record(ev(7, StageKind::Sweep, 9));
        r.record(ev(8, StageKind::BatchWait, 11));
        let dump = r.dump_jsonl();
        assert_eq!(dump.lines().count(), 3);
        let events = read_events(dump.as_bytes()).expect("dump parses as trace JSONL");
        assert_eq!(events.len(), 3);
        match &events[2] {
            TraceEvent::Stage {
                request,
                stage,
                ref_request,
                ..
            } => {
                assert_eq!(*request, 8);
                assert_eq!(*stage, StageKind::BatchWait);
                assert_eq!(*ref_request, 7);
            }
            other => panic!("expected a stage event, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_writers_and_readers_never_tear() {
        // 4 writer threads × 200 events against a tiny ring, with a
        // reader snapshotting throughout: every event reported must
        // be one some writer actually recorded (payload fields are
        // all derived from the request id, so mixing two writes is
        // detectable), and the final snapshot must fill the ring.
        let r = std::sync::Arc::new(FlightRecorder::with_capacity(16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let request = t * 1000 + i + 1;
                    r.record(FlightEvent {
                        at_us: request * 3,
                        request,
                        stage: StageKind::ALL[(request as usize) % StageKind::ALL.len()],
                        dur_us: request * 7,
                        ref_request: request * 11,
                    });
                }
            }));
        }
        let reader = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..50 {
                    for e in r.snapshot() {
                        assert_eq!(e.at_us, e.request * 3, "torn event {e:?}");
                        assert_eq!(e.dur_us, e.request * 7, "torn event {e:?}");
                        assert_eq!(e.ref_request, e.request * 11, "torn event {e:?}");
                        assert_eq!(
                            e.stage,
                            StageKind::ALL[(e.request as usize) % StageKind::ALL.len()]
                        );
                        seen += 1;
                    }
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(r.recorded(), 800);
        assert_eq!(r.snapshot().len(), 16, "quiescent ring is fully readable");
    }
}
