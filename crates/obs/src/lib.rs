//! # aalign-obs — observability substrate for the AAlign workspace
//!
//! The paper's hybrid mechanism (Sec. V-B) makes per-column runtime
//! decisions — lazy-loop re-computation counts, iterate→scan
//! switches, probe outcomes — that the end-of-run `RunStats` totals
//! can only summarize. This crate makes those decisions *watchable*:
//!
//! * [`event`] — the typed event taxonomy: span begin/end for the
//!   engine's stages, align begin/end per database subject, and the
//!   per-column [`HybridEvent`] emitted from the hybrid kernel.
//! * [`sink`] — the [`TraceSink`] trait with zero-cost-when-disabled
//!   dispatch. The monomorphized [`NullSink`] compiles every emission
//!   site away; collectors buffer events per worker and merge them
//!   through a [`SharedCollector`].
//! * [`hist`] — fixed-bucket (log2) [`Histogram`]s with saturating,
//!   associative/commutative merge. No dependencies, `Copy`-free,
//!   cheap to record into from hot loops.
//! * [`jsonl`] — the JSON Lines trace format: a writer, and a parser
//!   strict enough to validate trace files end to end.
//! * [`report`] — reconstruction of the hybrid decision timeline
//!   (column ranges per strategy, switch points, probe outcomes)
//!   from a parsed trace — the `aalign trace-report` backend.
//! * [`flight`] — the always-on flight recorder: a fixed-capacity,
//!   lock-free ring of the last N request-stage events, readable at
//!   any moment (post-mortem dumps on dirty drain or worker loss,
//!   `GET /debug/flight` while healthy) and cheap enough to leave
//!   enabled in production.
//! * [`wire`] — the versioned wire substrate: a full recursive
//!   [`JsonValue`] parser/renderer (the flat [`jsonl`] format can't
//!   express nested service documents), `schema_version` stamping
//!   and checking, stable error envelopes, and lossless histogram
//!   serialization. Every machine-readable surface — CLI `--metrics-format`,
//!   the `aalign-serve` HTTP and JSON-RPC front ends — speaks this
//!   format.
//!
//! The crate sits at the bottom of the dependency stack (it depends
//! on nothing), so `aalign-core` can emit events from inside the
//! kernels and `aalign-par` can aggregate histograms into its
//! metrics without cycles.

pub mod event;
pub mod flight;
pub mod hist;
pub mod jsonl;
pub mod report;
pub mod sink;
pub mod wire;

pub use event::{HybridEvent, ProbeOutcome, StageKind, StrategyKind, TraceEvent};
pub use flight::{FlightEvent, FlightRecorder};
pub use hist::Histogram;
pub use jsonl::{event_to_json, parse_line, read_events, ParseError, TraceWriter};
pub use report::{StrategySegment, SubjectTimeline, TraceReport};
pub use sink::{CollectorSink, NullSink, SharedCollector, TraceSink};
pub use wire::{JsonValue, WireError, SCHEMA_VERSION};
