//! Trace sinks: where events go, and how "off" costs nothing.
//!
//! The kernel-facing contract is [`TraceSink`]. Emission sites are
//! written as
//!
//! ```ignore
//! if sink.enabled() {
//!     sink.record(TraceEvent::Hybrid(ev));
//! }
//! ```
//!
//! so a monomorphized [`NullSink`] — whose `enabled` is a constant
//! `false` — deletes the whole site at compile time. The dispatch
//! layer in `aalign-core` checks `enabled()` **once per alignment**
//! and routes disabled runs to the `NullSink` instantiation, which is
//! the exact pre-observability kernel code; the
//! `bench obs_overhead` guard in `crates/bench` holds that path to
//! <1% overhead.

use std::sync::{Arc, Mutex};

use crate::event::{HybridEvent, TraceEvent};

/// Receiver of typed trace events.
///
/// Implementations must keep [`record`](TraceSink::record) cheap —
/// it runs on worker threads between SIMD columns. Buffer locally,
/// flush in batches (see [`SharedCollector`]).
pub trait TraceSink {
    /// Whether this sink wants events at all. Emission sites gate on
    /// this; a constant `false` (as in [`NullSink`]) removes them.
    #[inline(always)]
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event.
    fn record(&mut self, event: TraceEvent);

    /// Convenience wrapper for the kernel's hot path: gate + wrap.
    #[inline(always)]
    fn on_hybrid(&mut self, ev: HybridEvent) {
        if self.enabled() {
            self.record(TraceEvent::Hybrid(ev));
        }
    }
}

/// The no-op sink. Monomorphizing a kernel against `NullSink`
/// produces code identical to one with no tracing support at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Mutable references forward, so `&mut dyn TraceSink` (the shape the
/// runtime dispatch layer threads through non-generic call chains)
/// satisfies the same bound as a concrete sink.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline(always)]
    fn record(&mut self, event: TraceEvent) {
        (**self).record(event);
    }
}

/// An in-memory event buffer. Workers keep one per thread, reuse it
/// across subjects (`events.clear()` via [`SharedCollector::append`]
/// drains it), and never contend inside an alignment.
#[derive(Debug, Default)]
pub struct CollectorSink {
    /// The buffered events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl CollectorSink {
    /// Fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the buffered events, leaving the collector empty (the
    /// allocation is surrendered with them).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for CollectorSink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A cloneable, thread-safe event collector: the rendezvous between
/// per-worker [`CollectorSink`] buffers and whoever writes the trace
/// out. Workers push whole per-subject batches under one lock
/// acquisition, so events for one subject are always contiguous in
/// the final stream — the invariant the timeline reconstruction in
/// [`crate::report`] relies on.
#[derive(Debug, Clone, Default)]
pub struct SharedCollector {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
}

impl SharedCollector {
    /// Fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event (engine-thread framing: query/span events).
    pub fn push(&self, event: TraceEvent) {
        self.inner.lock().expect("trace collector lock").push(event);
    }

    /// Move a worker's buffered batch in, draining `batch` so its
    /// allocation is reused for the next subject.
    pub fn append(&self, batch: &mut Vec<TraceEvent>) {
        if batch.is_empty() {
            return;
        }
        self.inner
            .lock()
            .expect("trace collector lock")
            .append(batch);
    }

    /// Events collected so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace collector lock").len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain everything collected so far, in arrival order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.inner.lock().expect("trace collector lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ProbeOutcome, StrategyKind};

    fn col(column: u64) -> HybridEvent {
        HybridEvent {
            column,
            strategy: StrategyKind::Iterate,
            lazy_sweeps: 0,
            switched: false,
            probe: ProbeOutcome::NotProbe,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_drops_everything() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.on_hybrid(col(0));
        sink.record(TraceEvent::QueryEnd { at_us: 1, hits: 0 });
        // Nothing observable — the point is it compiles to nothing.
    }

    #[test]
    fn collector_buffers_in_order_and_take_empties() {
        let mut sink = CollectorSink::new();
        assert!(sink.enabled());
        sink.on_hybrid(col(0));
        sink.on_hybrid(col(1));
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(sink.events.is_empty());
        match &events[1] {
            TraceEvent::Hybrid(h) => assert_eq!(h.column, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mut_ref_forwards_the_sink_impl() {
        let mut sink = CollectorSink::new();
        {
            let by_ref: &mut dyn TraceSink = &mut sink;
            assert!(by_ref.enabled());
            by_ref.on_hybrid(col(3));
        }
        assert_eq!(sink.events.len(), 1);
    }

    #[test]
    fn shared_collector_merges_batches_atomically() {
        let shared = SharedCollector::new();
        let clone = shared.clone();
        let mut batch = vec![
            TraceEvent::AlignBegin {
                subject: 9,
                len: 4,
                worker: 0,
            },
            TraceEvent::Hybrid(col(0)),
        ];
        clone.append(&mut batch);
        assert!(batch.is_empty(), "append drains the worker buffer");
        shared.push(TraceEvent::QueryEnd { at_us: 10, hits: 1 });
        assert_eq!(shared.len(), 3);
        let all = shared.drain();
        assert_eq!(all.len(), 3);
        assert!(shared.is_empty());
        assert!(matches!(all[0], TraceEvent::AlignBegin { subject: 9, .. }));
    }
}
