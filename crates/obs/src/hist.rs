//! Fixed-bucket log2 histograms.
//!
//! No dependencies, no floats on the record path: bucket selection is
//! a `leading_zeros` and an array increment, cheap enough to run once
//! per scored subject inside the sweep. Bucket `0` holds the value
//! `0`; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`, so the full `u64`
//! range fits in 65 buckets.
//!
//! All accumulation (recording **and** merging) uses saturating
//! arithmetic, which keeps [`merge`](Histogram::merge) associative
//! and commutative even at the `u64` ceiling — the property the
//! `hist_properties` proptest pins down, and the reason per-worker
//! histograms can be folded in any order without changing the
//! aggregate.

/// Number of log2 buckets covering all of `u64`.
pub const BUCKETS: usize = 65;

/// Index of the bucket holding `value`.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = bucket_of(value);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram in (saturating per field, so the fold
    /// order never matters).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 for an empty histogram).
    pub fn max_value(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value; `0.0` for an empty histogram (never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= 64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Exact inverse of [`bucket_upper`](Self::bucket_upper): the
    /// bucket index whose inclusive upper bound is `upper`, or `None`
    /// if `upper` is not a log2 bucket boundary. This is what lets a
    /// serialized `(upper, count)` pair list be mapped back onto the
    /// fixed bucket array losslessly.
    pub fn bucket_index(upper: u64) -> Option<usize> {
        match upper {
            0 => Some(0),
            u64::MAX => Some(64),
            u => {
                // upper == 2^i - 1  ⟺  upper + 1 is a power of two.
                if u.wrapping_add(1).is_power_of_two() {
                    Some(64 - u.leading_zeros() as usize)
                } else {
                    None
                }
            }
        }
    }

    /// Rebuild a histogram from serialized parts: occupied buckets as
    /// `(inclusive_upper_bound, count)` pairs (the shape produced by
    /// [`occupied`](Self::occupied)) plus the saturating `sum` and
    /// the `max` sample. Returns `None` when an upper bound is not a
    /// bucket boundary or the parts are inconsistent (samples with a
    /// zero count, or `sum`/`max` nonzero on an empty histogram).
    pub fn from_parts<I>(buckets: I, sum: u64, max: u64) -> Option<Self>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut h = Histogram::new();
        for (upper, count) in buckets {
            let idx = Self::bucket_index(upper)?;
            h.counts[idx] = h.counts[idx].saturating_add(count);
            h.count = h.count.saturating_add(count);
        }
        if h.count == 0 && (sum != 0 || max != 0) {
            return None;
        }
        h.sum = sum;
        h.max = max;
        Some(h)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`q` clamped to `[0, 1]`); `0` for an empty histogram. The
    /// log2 buckets make this an upper estimate within 2× of the true
    /// order statistic — the right fidelity for latency summaries.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate: [`quantile`](Self::quantile)`(0.50)`.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate: [`quantile`](Self::quantile)`(0.90)`.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate: [`quantile`](Self::quantile)`(0.99)`.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate:
    /// [`quantile`](Self::quantile)`(0.999)`.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Occupied buckets as `(inclusive_upper_bound, count)` pairs.
    pub fn occupied(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
    }

    /// Render as a Prometheus text-format histogram. Bucket bounds
    /// are multiplied by `scale` (e.g. `1e-9` to turn nanosecond
    /// samples into the idiomatic seconds), cumulated, and closed
    /// with the mandatory `+Inf` bucket, `_sum`, and `_count` lines.
    pub fn prom_lines(&self, name: &str, scale: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (upper, count) in self.occupied() {
            cum = cum.saturating_add(count);
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cum}",
                upper as f64 * scale
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum as f64 * scale);
        let _ = writeln!(out, "{name}_count {}", self.count);
        out
    }

    /// Compact JSON summary object
    /// (count/sum/max/mean/p50/p90/p99/p999).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(10), 1023);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_never_divides_by_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max_value(), 0);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1104);
        assert_eq!(h.max_value(), 1000);
        // p50 lands in the bucket of the 3rd sample (value 2, bucket
        // upper 3); quantiles are bucket upper bounds capped at max.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = Histogram::new();
        a.record(u64::MAX);
        a.record(u64::MAX);
        assert_eq!(a.sum(), u64::MAX, "sum saturates on record");
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.sum(), u64::MAX);
        assert_eq!(b.count(), 4);
        assert_eq!(b.max_value(), u64::MAX);
    }

    #[test]
    fn prom_rendering_is_cumulative_and_closed() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(2_000_000);
        let text = h.prom_lines("aalign_subject_latency_seconds", 1e-9);
        assert!(text.contains("# TYPE aalign_subject_latency_seconds histogram"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.contains("_count 3"));
        // Cumulative: the widest finite bucket already counts all 3.
        let last_finite = text
            .lines()
            .rfind(|l| l.contains("le=\"") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_finite.ends_with(" 3"), "{last_finite}");
    }

    #[test]
    fn json_summary_has_all_fields() {
        let mut h = Histogram::new();
        h.record(10);
        let j = h.to_json();
        for key in ["count", "sum", "max", "mean", "p50", "p90", "p99", "p999"] {
            assert!(j.contains(&format!("\"{key}\"")), "{key} missing in {j}");
        }
    }

    #[test]
    fn named_quantile_accessors_match_quantile() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), h.quantile(0.50));
        assert_eq!(h.p90(), h.quantile(0.90));
        assert_eq!(h.p99(), h.quantile(0.99));
        assert_eq!(h.p999(), h.quantile(0.999));
        // The tail quantiles are ordered and land at/above the body.
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max_value());
    }
}
