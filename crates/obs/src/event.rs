//! The typed trace-event taxonomy.
//!
//! Events are deliberately flat and allocation-light: the per-column
//! [`HybridEvent`] is `Copy` and carries no strings, so emitting one
//! into a buffering sink costs a bounds check and a 24-byte move.
//! Only the per-query framing events (`QueryBegin`, span events)
//! carry owned strings, and those fire a handful of times per query.

/// Which striped strategy processed a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Striped-iterate (Alg. 2): lower-bound pass + lazy correction.
    Iterate,
    /// Striped-scan (Alg. 3): tentative pass + weighted max-scan.
    Scan,
}

impl StrategyKind {
    /// Stable wire name (used by the JSONL format).
    pub fn as_str(self) -> &'static str {
        match self {
            StrategyKind::Iterate => "iterate",
            StrategyKind::Scan => "scan",
        }
    }

    /// Inverse of [`as_str`](StrategyKind::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "iterate" => Some(StrategyKind::Iterate),
            "scan" => Some(StrategyKind::Scan),
            _ => None,
        }
    }
}

/// Outcome of a hybrid probe column (Sec. V-B: after a scan burst,
/// one iterate column runs and its lazy counter decides the mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeOutcome {
    /// This column was not a probe.
    NotProbe,
    /// Probe succeeded: the kernel stayed in iterate mode.
    Stayed,
    /// Probe failed: the kernel returned to scan mode.
    Returned,
}

impl ProbeOutcome {
    /// Stable wire name (used by the JSONL format).
    pub fn as_str(self) -> &'static str {
        match self {
            ProbeOutcome::NotProbe => "none",
            ProbeOutcome::Stayed => "stayed",
            ProbeOutcome::Returned => "returned",
        }
    }

    /// Inverse of [`as_str`](ProbeOutcome::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ProbeOutcome::NotProbe),
            "stayed" => Some(ProbeOutcome::Stayed),
            "returned" => Some(ProbeOutcome::Returned),
            _ => None,
        }
    }
}

/// A request-lifecycle stage inside the serve stack. One request
/// produces one [`TraceEvent::Stage`] per stage it passes through:
/// `parse → queue → (batch_wait | sweep → merge) → respond`.
/// Coalesced followers skip `sweep`/`merge` and instead record
/// `batch_wait` referencing the leader that ran the sweep for them.
///
/// The `Shard*` kinds are shard-*supervisor* lifecycle events
/// (`aalign-shard`), not per-request stages: `request` carries the
/// query sequence number when one was in flight (0 for background
/// lifecycle like heartbeat-driven respawns) and `ref_request`
/// carries the shard index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Front-end wire parsing (HTTP body / JSON-RPC line → request).
    Parse,
    /// Time spent in the bounded admission queue.
    Queue,
    /// A coalesced follower waiting on its leader's sweep.
    BatchWait,
    /// The engine sweep (prepare + align + rank).
    Sweep,
    /// Merging per-worker results into the final report.
    Merge,
    /// Rendering and writing the response back to the client.
    Respond,
    /// A shard child process was (re)spawned and passed readiness.
    ShardSpawn,
    /// A shard child's death was detected (crash, EOF, failed ping).
    ShardExit,
    /// A query's shard request was retried on a respawned child.
    ShardRetry,
    /// A shard's circuit breaker tripped: the shard is marked dead
    /// and its range reported uncovered until the supervisor drains.
    ShardBreaker,
}

impl StageKind {
    /// Every stage, in lifecycle order (used by exporters).
    pub const ALL: [StageKind; 10] = [
        StageKind::Parse,
        StageKind::Queue,
        StageKind::BatchWait,
        StageKind::Sweep,
        StageKind::Merge,
        StageKind::Respond,
        StageKind::ShardSpawn,
        StageKind::ShardExit,
        StageKind::ShardRetry,
        StageKind::ShardBreaker,
    ];

    /// Stable wire name (used by the JSONL format).
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Parse => "parse",
            StageKind::Queue => "queue",
            StageKind::BatchWait => "batch_wait",
            StageKind::Sweep => "sweep",
            StageKind::Merge => "merge",
            StageKind::Respond => "respond",
            StageKind::ShardSpawn => "shard_spawn",
            StageKind::ShardExit => "shard_exit",
            StageKind::ShardRetry => "shard_retry",
            StageKind::ShardBreaker => "shard_breaker",
        }
    }

    /// Inverse of [`as_str`](StageKind::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "parse" => Some(StageKind::Parse),
            "queue" => Some(StageKind::Queue),
            "batch_wait" => Some(StageKind::BatchWait),
            "sweep" => Some(StageKind::Sweep),
            "merge" => Some(StageKind::Merge),
            "respond" => Some(StageKind::Respond),
            "shard_spawn" => Some(StageKind::ShardSpawn),
            "shard_exit" => Some(StageKind::ShardExit),
            "shard_retry" => Some(StageKind::ShardRetry),
            "shard_breaker" => Some(StageKind::ShardBreaker),
            _ => None,
        }
    }

    /// Dense code for compact in-memory encodings (flight recorder
    /// slots). Inverse is [`from_code`](Self::from_code).
    pub fn code(self) -> u8 {
        match self {
            StageKind::Parse => 0,
            StageKind::Queue => 1,
            StageKind::BatchWait => 2,
            StageKind::Sweep => 3,
            StageKind::Merge => 4,
            StageKind::Respond => 5,
            StageKind::ShardSpawn => 6,
            StageKind::ShardExit => 7,
            StageKind::ShardRetry => 8,
            StageKind::ShardBreaker => 9,
        }
    }

    /// True for the shard-supervisor lifecycle kinds, which are not
    /// per-request latency stages (exporters that aggregate stage
    /// duration histograms skip them).
    pub fn is_shard_lifecycle(self) -> bool {
        matches!(
            self,
            StageKind::ShardSpawn
                | StageKind::ShardExit
                | StageKind::ShardRetry
                | StageKind::ShardBreaker
        )
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<Self> {
        StageKind::ALL.get(code as usize).copied()
    }
}

/// One per-column decision of the hybrid kernel — the event the whole
/// subsystem exists to surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridEvent {
    /// Subject column index (0-based).
    pub column: u64,
    /// Strategy that processed the column.
    pub strategy: StrategyKind,
    /// Lazy-loop whole-column sweeps the correction needed (iterate
    /// columns only; always 0 for scan columns).
    pub lazy_sweeps: u32,
    /// True when this column's counter exceeded the policy threshold
    /// and triggered an iterate→scan switch.
    pub switched: bool,
    /// Probe outcome, when this column was a post-burst probe.
    pub probe: ProbeOutcome,
}

/// A structured trace event. One query produces one `QueryBegin` …
/// `QueryEnd` envelope; inside it, engine stages emit span events and
/// every aligned subject emits an `AlignBegin` … `AlignEnd` pair
/// enclosing its per-column [`HybridEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A query entered the engine.
    QueryBegin {
        /// Query sequence id.
        query: String,
        /// Database subjects the sweep will score.
        subjects: u64,
    },
    /// An engine stage started.
    SpanBegin {
        /// Stage name (`prepare` / `sweep` / `merge` / `stats` / …).
        span: String,
        /// Microseconds since `QueryBegin`.
        at_us: u64,
    },
    /// An engine stage finished.
    SpanEnd {
        /// Stage name, matching the `SpanBegin`.
        span: String,
        /// Microseconds since `QueryBegin` at which the stage ended.
        at_us: u64,
        /// Stage duration in microseconds.
        dur_us: u64,
    },
    /// A worker began aligning one database subject.
    AlignBegin {
        /// Database index of the subject.
        subject: u64,
        /// Subject length in residues.
        len: u64,
        /// Pool-local worker id.
        worker: u64,
    },
    /// One hybrid column decision (between `AlignBegin`/`AlignEnd`).
    Hybrid(HybridEvent),
    /// A narrow-width kernel run saturated and the engine re-aligned
    /// the subject at a wider element width (between
    /// `AlignBegin`/`AlignEnd`; the discarded narrow run's column
    /// events are dropped, so the envelope's columns describe only
    /// the kept run).
    Rescue {
        /// Database index of the subject being rescued.
        subject: u64,
        /// Element width (bits) of the saturated run.
        from_bits: u64,
        /// Element width (bits) of the retry.
        to_bits: u64,
    },
    /// A worker finished aligning one database subject.
    AlignEnd {
        /// Database index of the subject.
        subject: u64,
        /// Alignment score.
        score: i64,
        /// Columns the final (kept) kernel run processed with iterate.
        iterate_columns: u64,
        /// Columns the final (kept) kernel run processed with scan.
        scan_columns: u64,
        /// Wall time of the alignment in microseconds.
        dur_us: u64,
    },
    /// The query finished.
    QueryEnd {
        /// Microseconds since `QueryBegin`.
        at_us: u64,
        /// Ranked hits returned.
        hits: u64,
    },
    /// A request-lifecycle stage completed inside the serve stack.
    /// Unlike the engine events above, stage events carry the
    /// originating `request` id so a JSONL stream interleaving many
    /// concurrent requests stays attributable.
    Stage {
        /// Request id assigned at the front end (never 0).
        request: u64,
        /// Which stage completed.
        stage: StageKind,
        /// Microseconds since the recorder's epoch at completion.
        at_us: u64,
        /// Stage duration in microseconds.
        dur_us: u64,
        /// For `batch_wait`: the request id of the leader whose sweep
        /// this request coalesced onto. 0 everywhere else.
        ref_request: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_round_trip() {
        for s in [StrategyKind::Iterate, StrategyKind::Scan] {
            assert_eq!(StrategyKind::parse(s.as_str()), Some(s));
        }
        for p in [
            ProbeOutcome::NotProbe,
            ProbeOutcome::Stayed,
            ProbeOutcome::Returned,
        ] {
            assert_eq!(ProbeOutcome::parse(p.as_str()), Some(p));
        }
        assert_eq!(StrategyKind::parse("neither"), None);
        assert_eq!(ProbeOutcome::parse("maybe"), None);
        for s in StageKind::ALL {
            assert_eq!(StageKind::parse(s.as_str()), Some(s));
            assert_eq!(StageKind::from_code(s.code()), Some(s));
        }
        assert_eq!(StageKind::parse("warp"), None);
        assert_eq!(StageKind::from_code(StageKind::ALL.len() as u8), None);
    }

    #[test]
    fn shard_lifecycle_kinds_are_flagged() {
        let lifecycle: Vec<StageKind> = StageKind::ALL
            .into_iter()
            .filter(|s| s.is_shard_lifecycle())
            .collect();
        assert_eq!(
            lifecycle,
            vec![
                StageKind::ShardSpawn,
                StageKind::ShardExit,
                StageKind::ShardRetry,
                StageKind::ShardBreaker,
            ]
        );
        assert!(!StageKind::Sweep.is_shard_lifecycle());
    }

    #[test]
    fn hybrid_event_is_small_and_copy() {
        // The kernel emits one of these per subject column; keep it a
        // register-friendly value type.
        assert!(core::mem::size_of::<HybridEvent>() <= 24);
        let ev = HybridEvent {
            column: 7,
            strategy: StrategyKind::Iterate,
            lazy_sweeps: 2,
            switched: false,
            probe: ProbeOutcome::NotProbe,
        };
        let copy = ev; // Copy, not move
        assert_eq!(ev, copy);
    }
}
