//! JSON Lines trace format: one event per line, `"ev"` discriminator.
//!
//! The format is deliberately flat — every event serializes to a
//! single-level object of strings, integers, and booleans — which
//! keeps both the writer and the parser dependency-free. The parser
//! is strict (unknown `"ev"` values, missing fields, and malformed
//! JSON are hard errors) so `read_events` doubles as the trace-file
//! validator used by CI and by `aalign trace-report`.
//!
//! Wire names:
//!
//! | `"ev"`        | event                     |
//! |---------------|---------------------------|
//! | `query_begin` | [`TraceEvent::QueryBegin`]|
//! | `span_begin`  | [`TraceEvent::SpanBegin`] |
//! | `span_end`    | [`TraceEvent::SpanEnd`]   |
//! | `align_begin` | [`TraceEvent::AlignBegin`]|
//! | `col`         | [`TraceEvent::Hybrid`]    |
//! | `rescue`      | [`TraceEvent::Rescue`]    |
//! | `align_end`   | [`TraceEvent::AlignEnd`]  |
//! | `query_end`   | [`TraceEvent::QueryEnd`]  |
//! | `stage`       | [`TraceEvent::Stage`]     |

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::event::{HybridEvent, ProbeOutcome, StageKind, StrategyKind, TraceEvent};

/// Escape a string for inclusion in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serialize one event to its single-line JSON form (no trailing
/// newline).
pub fn event_to_json(event: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    match event {
        TraceEvent::QueryBegin { query, subjects } => {
            s.push_str("{\"ev\":\"query_begin\",\"query\":\"");
            escape_into(&mut s, query);
            s.push_str(&format!("\",\"subjects\":{subjects}}}"));
        }
        TraceEvent::SpanBegin { span, at_us } => {
            s.push_str("{\"ev\":\"span_begin\",\"span\":\"");
            escape_into(&mut s, span);
            s.push_str(&format!("\",\"at_us\":{at_us}}}"));
        }
        TraceEvent::SpanEnd {
            span,
            at_us,
            dur_us,
        } => {
            s.push_str("{\"ev\":\"span_end\",\"span\":\"");
            escape_into(&mut s, span);
            s.push_str(&format!("\",\"at_us\":{at_us},\"dur_us\":{dur_us}}}"));
        }
        TraceEvent::AlignBegin {
            subject,
            len,
            worker,
        } => {
            s.push_str(&format!(
                "{{\"ev\":\"align_begin\",\"subject\":{subject},\"len\":{len},\"worker\":{worker}}}"
            ));
        }
        TraceEvent::Hybrid(h) => {
            s.push_str(&format!(
                "{{\"ev\":\"col\",\"column\":{},\"strategy\":\"{}\",\"sweeps\":{},\"switched\":{},\"probe\":\"{}\"}}",
                h.column,
                h.strategy.as_str(),
                h.lazy_sweeps,
                h.switched,
                h.probe.as_str(),
            ));
        }
        TraceEvent::Rescue {
            subject,
            from_bits,
            to_bits,
        } => {
            s.push_str(&format!(
                "{{\"ev\":\"rescue\",\"subject\":{subject},\"from_bits\":{from_bits},\"to_bits\":{to_bits}}}"
            ));
        }
        TraceEvent::AlignEnd {
            subject,
            score,
            iterate_columns,
            scan_columns,
            dur_us,
        } => {
            s.push_str(&format!(
                "{{\"ev\":\"align_end\",\"subject\":{subject},\"score\":{score},\"iterate_columns\":{iterate_columns},\"scan_columns\":{scan_columns},\"dur_us\":{dur_us}}}"
            ));
        }
        TraceEvent::QueryEnd { at_us, hits } => {
            s.push_str(&format!(
                "{{\"ev\":\"query_end\",\"at_us\":{at_us},\"hits\":{hits}}}"
            ));
        }
        TraceEvent::Stage {
            request,
            stage,
            at_us,
            dur_us,
            ref_request,
        } => {
            s.push_str(&format!(
                "{{\"ev\":\"stage\",\"request\":{request},\"stage\":\"{}\",\"at_us\":{at_us},\"dur_us\":{dur_us},\"ref_request\":{ref_request}}}",
                stage.as_str(),
            ));
        }
    }
    s
}

/// Buffered JSONL writer for trace streams.
pub struct TraceWriter<W: Write> {
    out: W,
    written: u64,
}

impl<W: Write> std::fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("written", &self.written)
            .finish_non_exhaustive()
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wrap a writer. Callers that care about syscall counts should
    /// hand in a `BufWriter`.
    pub fn new(out: W) -> Self {
        Self { out, written: 0 }
    }

    /// Write one event as one line.
    pub fn write_event(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.out.write_all(event_to_json(event).as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Write a batch of events.
    pub fn write_all(&mut self, events: &[TraceEvent]) -> io::Result<()> {
        for ev in events {
            self.write_event(ev)?;
        }
        Ok(())
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line is not a flat JSON object of the allowed value types.
    Malformed(String),
    /// The object has no `"ev"` field or an unknown discriminator.
    UnknownEvent(String),
    /// A required field is absent or has the wrong type.
    MissingField(&'static str),
    /// An enum-valued field holds an unrecognized wire name.
    BadValue(&'static str, String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed(why) => write!(f, "malformed JSON line: {why}"),
            ParseError::UnknownEvent(ev) => write!(f, "unknown event type {ev:?}"),
            ParseError::MissingField(name) => write!(f, "missing or mistyped field {name:?}"),
            ParseError::BadValue(field, got) => {
                write!(f, "bad value {got:?} for field {field:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// A flat JSON value: the only shapes the trace format uses.
#[derive(Debug, Clone, PartialEq)]
enum Flat {
    Str(String),
    Int(i64),
    Bool(bool),
}

/// Parse a flat JSON object (strings, integers, booleans only).
fn parse_flat(line: &str) -> Result<BTreeMap<String, Flat>, ParseError> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let err = |why: &str| ParseError::Malformed(why.to_string());

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn parse_string(line: &str, bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
        let malformed = |why: &str| ParseError::Malformed(why.to_string());
        if *pos >= bytes.len() || bytes[*pos] != b'"' {
            return Err(malformed("expected string"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            if *pos >= bytes.len() {
                return Err(malformed("unterminated string"));
            }
            match bytes[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    if *pos >= bytes.len() {
                        return Err(malformed("truncated escape"));
                    }
                    match bytes[*pos] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if *pos + 4 >= bytes.len() {
                                return Err(malformed("truncated \\u escape"));
                            }
                            let hex = &line[*pos + 1..*pos + 5];
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| malformed("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| malformed("bad \\u codepoint"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(malformed("unknown escape")),
                    }
                    *pos += 1;
                }
                _ => {
                    // Advance over one UTF-8 scalar, not one byte.
                    let rest = &line[*pos..];
                    let c = rest.chars().next().ok_or_else(|| malformed("bad utf8"))?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    skip_ws(bytes, &mut pos);
    if pos >= bytes.len() || bytes[pos] != b'{' {
        return Err(err("expected object"));
    }
    pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, &mut pos);
    if pos < bytes.len() && bytes[pos] == b'}' {
        pos += 1;
    } else {
        loop {
            skip_ws(bytes, &mut pos);
            let key = parse_string(line, bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos >= bytes.len() || bytes[pos] != b':' {
                return Err(err("expected ':'"));
            }
            pos += 1;
            skip_ws(bytes, &mut pos);
            let value = if pos < bytes.len() && bytes[pos] == b'"' {
                Flat::Str(parse_string(line, bytes, &mut pos)?)
            } else if line[pos..].starts_with("true") {
                pos += 4;
                Flat::Bool(true)
            } else if line[pos..].starts_with("false") {
                pos += 5;
                Flat::Bool(false)
            } else {
                let start = pos;
                if pos < bytes.len() && bytes[pos] == b'-' {
                    pos += 1;
                }
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                if pos == start {
                    return Err(err("expected value"));
                }
                let n: i64 = line[start..pos]
                    .parse()
                    .map_err(|_| err("integer out of range"))?;
                Flat::Int(n)
            };
            map.insert(key, value);
            skip_ws(bytes, &mut pos);
            match bytes.get(pos) {
                Some(b',') => {
                    pos += 1;
                }
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(err("expected ',' or '}'")),
            }
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing garbage after object"));
    }
    Ok(map)
}

fn get_str<'m>(map: &'m BTreeMap<String, Flat>, key: &'static str) -> Result<&'m str, ParseError> {
    match map.get(key) {
        Some(Flat::Str(s)) => Ok(s),
        _ => Err(ParseError::MissingField(key)),
    }
}

fn get_u64(map: &BTreeMap<String, Flat>, key: &'static str) -> Result<u64, ParseError> {
    match map.get(key) {
        Some(Flat::Int(n)) if *n >= 0 => Ok(*n as u64),
        _ => Err(ParseError::MissingField(key)),
    }
}

fn get_i64(map: &BTreeMap<String, Flat>, key: &'static str) -> Result<i64, ParseError> {
    match map.get(key) {
        Some(Flat::Int(n)) => Ok(*n),
        _ => Err(ParseError::MissingField(key)),
    }
}

fn get_bool(map: &BTreeMap<String, Flat>, key: &'static str) -> Result<bool, ParseError> {
    match map.get(key) {
        Some(Flat::Bool(b)) => Ok(*b),
        _ => Err(ParseError::MissingField(key)),
    }
}

/// Parse one JSONL trace line back into a [`TraceEvent`].
pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
    let map = parse_flat(line)?;
    let ev = get_str(&map, "ev")
        .map_err(|_| ParseError::UnknownEvent("<missing \"ev\" field>".to_string()))?;
    match ev {
        "query_begin" => Ok(TraceEvent::QueryBegin {
            query: get_str(&map, "query")?.to_string(),
            subjects: get_u64(&map, "subjects")?,
        }),
        "span_begin" => Ok(TraceEvent::SpanBegin {
            span: get_str(&map, "span")?.to_string(),
            at_us: get_u64(&map, "at_us")?,
        }),
        "span_end" => Ok(TraceEvent::SpanEnd {
            span: get_str(&map, "span")?.to_string(),
            at_us: get_u64(&map, "at_us")?,
            dur_us: get_u64(&map, "dur_us")?,
        }),
        "align_begin" => Ok(TraceEvent::AlignBegin {
            subject: get_u64(&map, "subject")?,
            len: get_u64(&map, "len")?,
            worker: get_u64(&map, "worker")?,
        }),
        "col" => {
            let strategy_name = get_str(&map, "strategy")?;
            let strategy = StrategyKind::parse(strategy_name)
                .ok_or_else(|| ParseError::BadValue("strategy", strategy_name.to_string()))?;
            let probe_name = get_str(&map, "probe")?;
            let probe = ProbeOutcome::parse(probe_name)
                .ok_or_else(|| ParseError::BadValue("probe", probe_name.to_string()))?;
            let sweeps = get_u64(&map, "sweeps")?;
            Ok(TraceEvent::Hybrid(HybridEvent {
                column: get_u64(&map, "column")?,
                strategy,
                lazy_sweeps: u32::try_from(sweeps)
                    .map_err(|_| ParseError::BadValue("sweeps", sweeps.to_string()))?,
                switched: get_bool(&map, "switched")?,
                probe,
            }))
        }
        "rescue" => Ok(TraceEvent::Rescue {
            subject: get_u64(&map, "subject")?,
            from_bits: get_u64(&map, "from_bits")?,
            to_bits: get_u64(&map, "to_bits")?,
        }),
        "align_end" => Ok(TraceEvent::AlignEnd {
            subject: get_u64(&map, "subject")?,
            score: get_i64(&map, "score")?,
            iterate_columns: get_u64(&map, "iterate_columns")?,
            scan_columns: get_u64(&map, "scan_columns")?,
            dur_us: get_u64(&map, "dur_us")?,
        }),
        "query_end" => Ok(TraceEvent::QueryEnd {
            at_us: get_u64(&map, "at_us")?,
            hits: get_u64(&map, "hits")?,
        }),
        "stage" => {
            let stage_name = get_str(&map, "stage")?;
            let stage = StageKind::parse(stage_name)
                .ok_or_else(|| ParseError::BadValue("stage", stage_name.to_string()))?;
            Ok(TraceEvent::Stage {
                request: get_u64(&map, "request")?,
                stage,
                at_us: get_u64(&map, "at_us")?,
                dur_us: get_u64(&map, "dur_us")?,
                ref_request: get_u64(&map, "ref_request")?,
            })
        }
        other => Ok(Err(ParseError::UnknownEvent(other.to_string()))?),
    }
}

/// Read and validate a whole JSONL trace stream. Blank lines are
/// skipped; any other line that fails to parse aborts with the
/// 1-based line number attached.
pub fn read_events<R: BufRead>(reader: R) -> Result<Vec<TraceEvent>, (usize, ParseError)> {
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| (idx + 1, ParseError::Malformed(format!("io error: {e}"))))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(&line).map_err(|e| (idx + 1, e))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::QueryBegin {
                query: "Q\"1\"\n".to_string(),
                subjects: 3,
            },
            TraceEvent::SpanBegin {
                span: "sweep".to_string(),
                at_us: 12,
            },
            TraceEvent::AlignBegin {
                subject: 0,
                len: 40,
                worker: 1,
            },
            TraceEvent::Hybrid(HybridEvent {
                column: 5,
                strategy: StrategyKind::Scan,
                lazy_sweeps: 0,
                switched: false,
                probe: ProbeOutcome::Returned,
            }),
            TraceEvent::Hybrid(HybridEvent {
                column: 6,
                strategy: StrategyKind::Iterate,
                lazy_sweeps: 4,
                switched: true,
                probe: ProbeOutcome::NotProbe,
            }),
            TraceEvent::Rescue {
                subject: 0,
                from_bits: 8,
                to_bits: 16,
            },
            TraceEvent::AlignEnd {
                subject: 0,
                score: -3,
                iterate_columns: 30,
                scan_columns: 10,
                dur_us: 88,
            },
            TraceEvent::SpanEnd {
                span: "sweep".to_string(),
                at_us: 100,
                dur_us: 88,
            },
            TraceEvent::QueryEnd {
                at_us: 101,
                hits: 3,
            },
            TraceEvent::Stage {
                request: 41,
                stage: StageKind::BatchWait,
                at_us: 207,
                dur_us: 88,
                ref_request: 40,
            },
            TraceEvent::Stage {
                request: 40,
                stage: StageKind::Sweep,
                at_us: 205,
                dur_us: 90,
                ref_request: 0,
            },
        ]
    }

    #[test]
    fn round_trips_every_event_kind() {
        for ev in samples() {
            let line = event_to_json(&ev);
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "line was {line}");
        }
    }

    #[test]
    fn writer_then_reader_round_trips_a_stream() {
        let events = samples();
        let mut writer = TraceWriter::new(Vec::new());
        writer.write_all(&events).unwrap();
        assert_eq!(writer.written(), events.len() as u64);
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), events.len());
        let back = read_events(text.as_bytes()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn parser_rejects_junk_with_line_numbers() {
        let text = "{\"ev\":\"query_end\",\"at_us\":1,\"hits\":0}\n\nnot json\n";
        let err = read_events(text.as_bytes()).unwrap_err();
        assert_eq!(err.0, 3, "blank line skipped, junk line numbered");
        assert!(matches!(err.1, ParseError::Malformed(_)));
    }

    #[test]
    fn parser_rejects_unknown_and_incomplete_events() {
        assert!(matches!(
            parse_line("{\"ev\":\"warp_drive\"}"),
            Err(ParseError::UnknownEvent(_))
        ));
        assert!(matches!(
            parse_line("{\"ev\":\"col\",\"column\":1}"),
            Err(ParseError::MissingField(_))
        ));
        assert!(matches!(
            parse_line("{\"ev\":\"col\",\"column\":1,\"strategy\":\"warp\",\"sweeps\":0,\"switched\":false,\"probe\":\"none\"}"),
            Err(ParseError::BadValue("strategy", _))
        ));
        assert!(matches!(
            parse_line("{\"ev\":\"query_end\",\"at_us\":-5,\"hits\":0}"),
            Err(ParseError::MissingField("at_us"))
        ));
        assert!(matches!(
            parse_line("{\"ev\":\"stage\",\"request\":1,\"stage\":\"warp\",\"at_us\":0,\"dur_us\":0,\"ref_request\":0}"),
            Err(ParseError::BadValue("stage", _))
        ));
        assert!(matches!(
            parse_line("{\"ev\":\"query_end\",\"at_us\":1,\"hits\":0} tail"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn string_escapes_survive_the_round_trip() {
        let ev = TraceEvent::QueryBegin {
            query: "tab\there \\ quote\" ctrl\u{1} unicode\u{e9}".to_string(),
            subjects: 1,
        };
        let line = event_to_json(&ev);
        assert_eq!(parse_line(&line).unwrap(), ev);
    }
}
