//! Property tests for the log2 histogram: merge is associative and
//! commutative (so per-worker histograms can be folded in any order),
//! and accumulation saturates instead of wrapping.

use proptest::collection::vec;
use proptest::prelude::*;

use aalign_obs::Histogram;

fn build(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(
        xs in vec(any::<u64>(), 0..40),
        ys in vec(any::<u64>(), 0..40),
    ) {
        let (a, b) = (build(&xs), build(&ys));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in vec(any::<u64>(), 0..30),
        ys in vec(any::<u64>(), 0..30),
        zs in vec(any::<u64>(), 0..30),
    ) {
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        xs in vec(any::<u64>(), 0..40),
        ys in vec(any::<u64>(), 0..40),
    ) {
        // Saturation can only trigger on sums near u64::MAX, where
        // record-order and merge-order both clamp to the same value,
        // so the two constructions agree everywhere.
        let both: Vec<u64> = xs.iter().chain(&ys).copied().collect();
        prop_assert_eq!(merged(&build(&xs), &build(&ys)), build(&both));
    }

    #[test]
    fn counters_saturate_never_wrap(
        xs in vec(any::<u64>(), 1..20),
    ) {
        let mut h = build(&xs);
        // Pre-load near the ceiling, then keep going: every counter
        // must pin at u64::MAX rather than wrapping past it.
        for _ in 0..3 {
            h.record(u64::MAX);
        }
        let before = h.clone();
        h.merge(&before);
        prop_assert!(h.sum() >= before.sum());
        prop_assert!(h.count() >= before.count());
        prop_assert_eq!(h.max_value(), u64::MAX);
        prop_assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn quantiles_bounded_by_max(
        xs in vec(any::<u64>(), 1..50),
        q_millis in 0u64..=1000,
    ) {
        let q = q_millis as f64 / 1000.0;
        let h = build(&xs);
        let max = *xs.iter().max().unwrap();
        prop_assert!(h.quantile(q) <= max);
        prop_assert_eq!(h.quantile(1.0), max);
    }
}
