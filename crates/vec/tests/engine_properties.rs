//! Property tests: every hardware engine is observationally identical
//! to the emulated oracle, and the striped weighted max-scan equals
//! its scalar recurrence on arbitrary inputs and geometries.

use aalign_vec::scan::{wgt_max_scan_naive, wgt_max_scan_scalar, wgt_max_scan_striped, ScanParams};
use aalign_vec::{EmuEngine, SimdEngine, StripedLayout};
use proptest::prelude::*;

/// Compare one binary op across engines for all lanes.
macro_rules! cross_check {
    ($eng:expr, $emu:expr, $a:expr, $b:expr, $lanes:expr) => {{
        let (eng, emu) = ($eng, $emu);
        let (va, vb) = (eng.load(&$a), eng.load(&$b));
        let (ea, eb) = (emu.load(&$a), emu.load(&$b));
        let mut got = vec![0; $lanes];
        let mut want = vec![0; $lanes];

        eng.store(&mut got, eng.add(va, vb));
        emu.store(&mut want, emu.add(ea, eb));
        prop_assert_eq!(&got, &want, "add");

        eng.store(&mut got, eng.max(va, vb));
        emu.store(&mut want, emu.max(ea, eb));
        prop_assert_eq!(&got, &want, "max");

        prop_assert_eq!(eng.any_gt(va, vb), emu.any_gt(ea, eb), "any_gt");
        prop_assert_eq!(eng.reduce_max(va), emu.reduce_max(ea), "reduce_max");
        prop_assert_eq!(eng.extract_high(va), emu.extract_high(ea), "extract_high");

        eng.store(&mut got, eng.shift_insert_low(va, $b[0]));
        emu.store(&mut want, emu.shift_insert_low(ea, $b[0]));
        prop_assert_eq!(&got, &want, "shift_insert_low");

        eng.store(&mut got, eng.weighted_scan_max(va, $b[0] % 8 - 7));
        emu.store(&mut want, emu.weighted_scan_max(ea, $b[0] % 8 - 7));
        prop_assert_eq!(&got, &want, "weighted_scan_max");
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_i32_matches_oracle(
        a in proptest::collection::vec(-100_000i32..100_000, 8),
        b in proptest::collection::vec(-100_000i32..100_000, 8),
    ) {
        if let Some(eng) = aalign_vec::avx2::Avx2I32::new() {
            cross_check!(eng, EmuEngine::<i32, 8>::new(), a, b, 8);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_i16_matches_oracle(
        a in proptest::collection::vec(any::<i16>(), 16),
        b in proptest::collection::vec(any::<i16>(), 16),
    ) {
        if let Some(eng) = aalign_vec::avx2::Avx2I16::new() {
            cross_check!(eng, EmuEngine::<i16, 16>::new(), a, b, 16);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_i8_matches_oracle(
        a in proptest::collection::vec(any::<i8>(), 32),
        b in proptest::collection::vec(any::<i8>(), 32),
    ) {
        if let Some(eng) = aalign_vec::avx2::Avx2I8::new() {
            cross_check!(eng, EmuEngine::<i8, 32>::new(), a, b, 32);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_i32_matches_oracle(
        a in proptest::collection::vec(-100_000i32..100_000, 16),
        b in proptest::collection::vec(-100_000i32..100_000, 16),
    ) {
        if let Some(eng) = aalign_vec::avx512::Avx512I32::new() {
            cross_check!(eng, EmuEngine::<i32, 16>::new(), a, b, 16);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512bw_i16_matches_oracle(
        a in proptest::collection::vec(any::<i16>(), 32),
        b in proptest::collection::vec(any::<i16>(), 32),
    ) {
        if let Some(eng) = aalign_vec::avx512::Avx512I16::new() {
            cross_check!(eng, EmuEngine::<i16, 32>::new(), a, b, 32);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse41_i32_matches_oracle(
        a in proptest::collection::vec(-100_000i32..100_000, 4),
        b in proptest::collection::vec(-100_000i32..100_000, 4),
    ) {
        if let Some(eng) = aalign_vec::sse41::Sse41I32::new() {
            cross_check!(eng, EmuEngine::<i32, 4>::new(), a, b, 4);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse41_i16_matches_oracle(
        a in proptest::collection::vec(any::<i16>(), 8),
        b in proptest::collection::vec(any::<i16>(), 8),
    ) {
        if let Some(eng) = aalign_vec::sse41::Sse41I16::new() {
            cross_check!(eng, EmuEngine::<i16, 8>::new(), a, b, 8);
        }
    }

    /// Scalar recurrence equals the O(m²) definition.
    #[test]
    fn scan_scalar_equals_naive(
        input in proptest::collection::vec(-1000i32..1000, 0..48),
        init in -1000i32..1000,
        open in -40i32..0,
        ext in -10i32..0,
    ) {
        let p = ScanParams { init, open, ext };
        let mut a = vec![0; input.len()];
        let mut b = vec![0; input.len()];
        wgt_max_scan_naive(&input, p, &mut a);
        wgt_max_scan_scalar(&input, p, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Striped scan equals the scalar recurrence on every engine and
    /// geometry (including padding).
    #[test]
    fn scan_striped_equals_scalar(
        input in proptest::collection::vec(-100_000i32..100_000, 1..200),
        init in -1000i32..1000,
        open in -40i32..0,
        ext in -10i32..-1,
    ) {
        let p = ScanParams { init, open, ext };
        let m = input.len();
        let mut expect = vec![0; m];
        wgt_max_scan_scalar(&input, p, &mut expect);

        macro_rules! check_engine {
            ($eng:expr, $lanes:expr) => {{
                let eng = $eng;
                let layout = StripedLayout::new(m, $lanes);
                let mut sin = Vec::new();
                layout.stripe(&input, <i32 as aalign_vec::ScoreElem>::NEG_INF, &mut sin);
                let mut sout = vec![0; layout.padded_len()];
                wgt_max_scan_striped(eng, layout, &sin, &mut sout, p);
                for q in 0..m {
                    prop_assert_eq!(sout[layout.slot_of(q)], expect[q], "q={} m={}", q, m);
                }
            }};
        }
        check_engine!(EmuEngine::<i32, 4>::new(), 4);
        check_engine!(EmuEngine::<i32, 16>::new(), 16);
        #[cfg(target_arch = "x86_64")]
        {
            if let Some(eng) = aalign_vec::avx2::Avx2I32::new() {
                check_engine!(eng, 8);
            }
            if let Some(eng) = aalign_vec::avx512::Avx512I32::new() {
                check_engine!(eng, 16);
            }
        }
    }

    /// Striped layout round-trips arbitrary data for arbitrary shapes.
    #[test]
    fn layout_round_trip(
        data in proptest::collection::vec(any::<i32>(), 1..300),
        lanes_pow in 2u32..7,
    ) {
        let lanes = 1usize << lanes_pow;
        let layout = StripedLayout::new(data.len(), lanes);
        let mut striped = Vec::new();
        layout.stripe(&data, 0, &mut striped);
        prop_assert_eq!(layout.unstripe(&striped), data);
    }
}
