//! Sticky lane-saturation detection.
//!
//! Narrow-lane kernels can overflow; [`near_saturation`](crate::elem::near_saturation) is the
//! scalar end-of-run check the width-fallback logic has always used.
//! [`SaturationGuard`] is its vector twin: an `influence_test`-style
//! compare ([`SimdEngine::any_gt`]) of a running-maximum register
//! against the saturation ceiling `MAX_SCORE - headroom`, cheap enough
//! to run once per column. The column engine keeps the verdict
//! *sticky* — once any lane has crossed the ceiling the whole run is
//! untrusted and can be abandoned early, which is what makes the
//! engine-level overflow rescue (retry the pair at the next wider
//! lane width, the SSW/SWPS3 idiom) affordable: a doomed 8-bit run
//! costs a prefix, not a full sweep.

use crate::elem::ScoreElem;
use crate::engine::SimdEngine;

/// Precomputed ceiling register for per-column saturation checks.
///
/// `check` returns true iff some lane of `v` is at or above
/// `MAX_SCORE - headroom` — exactly the set of scores
/// [`near_saturation`](crate::elem::near_saturation) distrusts, so a
/// sticky per-column verdict agrees with the finish-time scalar check
/// whenever the run completes.
#[derive(Clone, Copy)]
pub struct SaturationGuard<E: SimdEngine> {
    /// Lanes hold `ceiling - 1`; `any_gt` against it tests `>= ceiling`.
    below_ceiling: E::Vec,
}

impl<E: SimdEngine> core::fmt::Debug for SaturationGuard<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SaturationGuard").finish_non_exhaustive()
    }
}

impl<E: SimdEngine> SaturationGuard<E> {
    /// Guard for element type `E::Elem` with `headroom` (the largest
    /// single further add the run could perform, matching the
    /// argument of [`crate::elem::near_saturation`]).
    #[inline(always)]
    pub fn new(eng: E, headroom: i32) -> Self {
        let ceiling = E::Elem::MAX_SCORE.to_i32() - headroom;
        Self {
            below_ceiling: eng.splat(E::Elem::from_i32_sat(ceiling - 1)),
        }
    }

    /// True iff any lane of `v` has reached the saturation ceiling.
    #[inline(always)]
    pub fn check(self, eng: E, v: E::Vec) -> bool {
        eng.any_gt(v, self.below_ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::near_saturation;
    use crate::emu::EmuEngine;

    #[test]
    fn guard_agrees_with_scalar_near_saturation_i8() {
        let eng = EmuEngine::<i8, 32>::new();
        for headroom in [1, 12, 100] {
            let guard = SaturationGuard::new(eng, headroom);
            for score in [-128i8, -1, 0, 50, 100, 114, 115, 116, 126, 127] {
                let v = eng.splat(score);
                assert_eq!(
                    guard.check(eng, v),
                    near_saturation(score, headroom),
                    "score {score} headroom {headroom}"
                );
            }
        }
    }

    #[test]
    fn guard_agrees_with_scalar_near_saturation_i16() {
        let eng = EmuEngine::<i16, 16>::new();
        let guard = SaturationGuard::new(eng, 11);
        for score in [0i16, 30_000, i16::MAX - 12, i16::MAX - 11, i16::MAX] {
            assert_eq!(
                guard.check(eng, eng.splat(score)),
                near_saturation(score, 11),
                "score {score}"
            );
        }
    }

    #[test]
    fn one_hot_lane_trips_the_guard() {
        let eng = EmuEngine::<i16, 16>::new();
        let guard = SaturationGuard::new(eng, 11);
        let mut lanes = [0i16; 16];
        assert!(!guard.check(eng, eng.load(&lanes)));
        lanes[7] = i16::MAX - 5;
        assert!(guard.check(eng, eng.load(&lanes)), "single hot lane");
    }
}
