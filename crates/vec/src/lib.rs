//! # aalign-vec — the AAlign vector-module layer
//!
//! This crate implements the "vector modules" of the AAlign paper
//! (Table I): a small set of primitive vector operations that the
//! alignment kernels are written against, with one implementation per
//! instruction set. The paper links its generated kernels against
//! AVX2 (Haswell) or IMCI (Knights Corner) modules; here the same role
//! is played by the [`SimdEngine`] trait and its backends:
//!
//! * [`emu::EmuEngine`] — a portable, const-generic reference engine
//!   that runs everywhere and defines the semantics all other backends
//!   must match (property-tested against each other).
//! * [`sse41`] — 128-bit SSE4.1 engines (`i32x4`, `i16x8`).
//! * [`avx2`] — 256-bit AVX2 engines (`i32x8`, `i16x16`, `i8x32`),
//!   the paper's "multi-core CPU" platform.
//! * [`avx512`] — 512-bit AVX-512 engines: `i32x16` (AVX-512F) stands
//!   in for the paper's IMCI many-core platform — IMCI and AVX-512
//!   share the 512-bit width, the 16×i32 shape, and (for IMCI) the
//!   lack of sub-32-bit integer lanes the paper works around — and
//!   `i16x32` (AVX-512BW) goes beyond IMCI with native narrow lanes.
//!
//! The app-specific modules of Table I are provided on top of the
//! basic ones: `set_vector` ([`SimdEngine::lower_bound`]),
//! `rshift_x_fill` ([`SimdEngine::shift_insert_low`]),
//! `influence_test` ([`SimdEngine::any_gt`]) and `wgt_max_scan`
//! ([`scan::wgt_max_scan_striped`]).
//!
//! Backends whose instructions may be absent at runtime expose
//! fallible constructors (`Option<Self>`), so every constructed engine
//! value is a proof that its ISA is available; the intrinsic calls
//! inside are sound by construction.
//!
//! Every `unsafe` in this crate carries a `// SAFETY:` comment and
//! interior unsafe operations must be re-asserted even inside `unsafe
//! fn` bodies; both rules are enforced — the first by the
//! `aalign-analyzer audit` lint, the second by the compiler:

#![deny(unsafe_op_in_unsafe_fn)]

pub mod detect;
pub mod elem;
pub mod emu;
pub mod engine;
pub mod layout;
pub mod saturate;
pub mod scan;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
#[cfg(target_arch = "x86_64")]
pub mod sse41;

pub use detect::{best_backend, Backend, IsaSupport};
pub use elem::ScoreElem;
pub use emu::EmuEngine;
pub use engine::SimdEngine;
pub use layout::StripedLayout;
pub use saturate::SaturationGuard;
