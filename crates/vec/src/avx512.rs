//! 512-bit AVX-512 backend (`i32x16`) — the stand-in for the paper's
//! IMCI many-core platform.
//!
//! IMCI (Knights Corner) and AVX-512 share the register width
//! (512 bits), the lane shape the paper uses on MIC (16 × i32 — IMCI
//! has no 8/16-bit integer lanes, so the paper restricts MIC kernels
//! to i32), and mask-register comparisons: `influence_test` here is a
//! single `cmpgt` into a 16-bit mask, exactly the IMCI behaviour the
//! paper contrasts with AVX2's movemask workaround.
//!
//! The cross-lane element shift is a single `valignd`
//! (`_mm512_alignr_epi32`), much cheaper than the AVX2 permute+alignr
//! composite — one of the structural reasons 512-bit engines favour
//! the scan strategy less (fewer correction savings per shift).
//!
//! # Safety
//! The constructor checks `is_x86_feature_detected!("avx512f")`.

#![allow(unsafe_code)]

use core::arch::x86_64::*;

use crate::engine::SimdEngine;

/// AVX-512 engine with 16 × i32 lanes.
#[derive(Debug, Clone, Copy)]
pub struct Avx512I32 {
    _priv: (),
}

impl Avx512I32 {
    /// Returns the engine if the CPU supports AVX-512F.
    pub fn new() -> Option<Self> {
        std::arch::is_x86_feature_detected!("avx512f").then_some(Self { _priv: () })
    }
}

impl SimdEngine for Avx512I32 {
    type Elem = i32;
    type Vec = __m512i;

    const LANES: usize = 16;
    const NAME: &'static str = "avx512/i32x16";

    #[inline(always)]
    fn splat(self, x: i32) -> __m512i {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_set1_epi32(x) }
    }

    #[inline(always)]
    fn load(self, src: &[i32]) -> __m512i {
        assert!(src.len() >= 16);
        // SAFETY: AVX-512 was verified by the constructor; the assert guarantees enough elements for the unaligned load.
        unsafe { _mm512_loadu_epi32(src.as_ptr()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32], v: __m512i) {
        assert!(dst.len() >= 16);
        // SAFETY: AVX-512 was verified by the constructor; the assert guarantees enough elements for the unaligned store.
        unsafe { _mm512_storeu_epi32(dst.as_mut_ptr(), v) }
    }

    #[inline(always)]
    fn add(self, a: __m512i, b: __m512i) -> __m512i {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_add_epi32(a, b) }
    }

    #[inline(always)]
    fn max(self, a: __m512i, b: __m512i) -> __m512i {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_max_epi32(a, b) }
    }

    #[inline(always)]
    fn any_gt(self, a: __m512i, b: __m512i) -> bool {
        // Compare straight into a 16-bit mask register (IMCI-style).
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_cmpgt_epi32_mask(a, b) != 0 }
    }

    #[inline(always)]
    fn shift_insert_low(self, v: __m512i, fill: i32) -> __m512i {
        // valignd: result[i] = concat(v, fillvec)[i + 15]
        //   lane 0 ← fillvec[15] = fill; lane i ← v[i-1].
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_alignr_epi32::<15>(v, _mm512_set1_epi32(fill)) }
    }

    #[inline(always)]
    fn extract_high(self, v: __m512i) -> i32 {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe {
            let hi256 = _mm512_extracti64x4_epi64::<1>(v);
            _mm256_extract_epi32::<7>(hi256)
        }
    }

    #[inline(always)]
    fn reduce_max(self, v: __m512i) -> i32 {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_reduce_max_epi32(v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::EmuEngine;

    #[test]
    fn matches_emulated_oracle() {
        let Some(eng) = Avx512I32::new() else {
            eprintln!("skipping: no avx512f");
            return;
        };
        let emu = EmuEngine::<i32, 16>::new();
        for seed in 0i32..24 {
            let a: Vec<i32> = (0..16).map(|i| (seed * 37 + i * 13) % 91 - 45).collect();
            let b: Vec<i32> = (0..16).map(|i| (seed * 53 + i * 7) % 77 - 38).collect();
            let (va, vb) = (eng.load(&a), eng.load(&b));
            let (ea, eb) = (emu.load(&a), emu.load(&b));
            let mut got = [0i32; 16];
            let mut want = [0i32; 16];

            eng.store(&mut got, eng.add(va, vb));
            emu.store(&mut want, emu.add(ea, eb));
            assert_eq!(got, want, "add");

            eng.store(&mut got, eng.max(va, vb));
            emu.store(&mut want, emu.max(ea, eb));
            assert_eq!(got, want, "max");

            assert_eq!(eng.any_gt(va, vb), emu.any_gt(ea, eb), "any_gt");
            assert_eq!(eng.reduce_max(va), emu.reduce_max(ea), "reduce_max");
            assert_eq!(eng.extract_high(va), emu.extract_high(ea), "extract");

            eng.store(&mut got, eng.shift_insert_low(va, -1234));
            emu.store(&mut want, emu.shift_insert_low(ea, -1234));
            assert_eq!(got, want, "valignd shift");

            for d in [0usize, 1, 2, 4, 8, 15, 16, 40] {
                eng.store(&mut got, eng.shift_insert_low_n(va, d, 5));
                emu.store(&mut want, emu.shift_insert_low_n(ea, d, 5));
                assert_eq!(got, want, "shift_n d={d}");
            }

            let mut g = [0i32; 16];
            let mut w = [0i32; 16];
            eng.store(&mut g, eng.weighted_scan_max(va, -3));
            emu.store(&mut w, emu.weighted_scan_max(ea, -3));
            assert_eq!(g, w, "weighted scan");
        }
    }

    #[test]
    fn influence_test_mask_semantics() {
        let Some(eng) = Avx512I32::new() else {
            return;
        };
        let a = eng.splat(5);
        let b = eng.splat(5);
        assert!(!eng.any_gt(a, b));
        let c = eng.shift_insert_low(a, 6); // one lane becomes 6
        assert!(eng.any_gt(c, b));
    }
}

/// AVX-512BW engine with 32 × i16 lanes.
///
/// IMCI had no sub-32-bit integer lanes (the paper's reason for
/// restricting MIC to i32); AVX-512BW added them, so modern 512-bit
/// hosts can run the narrow kernels at twice the lane count. The
/// element shift uses `vpermw` + a mask blend — a single cross-lane
/// permute instead of AVX2's permute/alignr/insert chain.
#[derive(Debug, Clone, Copy)]
pub struct Avx512I16 {
    _priv: (),
}

impl Avx512I16 {
    /// Returns the engine if the CPU supports AVX-512BW.
    pub fn new() -> Option<Self> {
        (std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw"))
        .then_some(Self { _priv: () })
    }
}

impl SimdEngine for Avx512I16 {
    type Elem = i16;
    type Vec = __m512i;

    const LANES: usize = 32;
    const NAME: &'static str = "avx512bw/i16x32";

    #[inline(always)]
    fn splat(self, x: i16) -> __m512i {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_set1_epi16(x) }
    }

    #[inline(always)]
    fn load(self, src: &[i16]) -> __m512i {
        assert!(src.len() >= 32);
        // SAFETY: AVX-512 was verified by the constructor; the assert guarantees enough elements for the unaligned load.
        unsafe { _mm512_loadu_epi16(src.as_ptr()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i16], v: __m512i) {
        assert!(dst.len() >= 32);
        // SAFETY: AVX-512 was verified by the constructor; the assert guarantees enough elements for the unaligned store.
        unsafe { _mm512_storeu_epi16(dst.as_mut_ptr(), v) }
    }

    #[inline(always)]
    fn add(self, a: __m512i, b: __m512i) -> __m512i {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_adds_epi16(a, b) }
    }

    #[inline(always)]
    fn max(self, a: __m512i, b: __m512i) -> __m512i {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_max_epi16(a, b) }
    }

    #[inline(always)]
    fn any_gt(self, a: __m512i, b: __m512i) -> bool {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe { _mm512_cmpgt_epi16_mask(a, b) != 0 }
    }

    #[inline(always)]
    fn shift_insert_low(self, v: __m512i, fill: i16) -> __m512i {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe {
            // vpermw: lane i ← lane i−1; lane 0 patched in by mask blend.
            let idx = _mm512_set_epi16(
                30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10,
                9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0,
            );
            let shifted = _mm512_permutexvar_epi16(idx, v);
            _mm512_mask_blend_epi16(0x1, shifted, _mm512_set1_epi16(fill))
        }
    }

    #[inline(always)]
    fn extract_high(self, v: __m512i) -> i16 {
        // SAFETY: AVX-512 was verified by the constructor; register-only intrinsics.
        unsafe {
            let hi256 = _mm512_extracti64x4_epi64::<1>(v);
            _mm256_extract_epi16::<15>(hi256) as i16
        }
    }
}

#[cfg(test)]
mod bw_tests {
    use super::*;
    use crate::emu::EmuEngine;

    #[test]
    fn i16x32_matches_emulated_oracle() {
        let Some(eng) = Avx512I16::new() else {
            eprintln!("skipping: no avx512bw");
            return;
        };
        let emu = EmuEngine::<i16, 32>::new();
        for seed in 0i32..24 {
            let a: Vec<i16> = (0..32)
                .map(|i| ((seed * 37 + i * 13) % 30_000 - 15_000) as i16)
                .collect();
            let b: Vec<i16> = (0..32)
                .map(|i| ((seed * 53 + i * 7) % 30_000 - 15_000) as i16)
                .collect();
            let (va, vb) = (eng.load(&a), eng.load(&b));
            let (ea, eb) = (emu.load(&a), emu.load(&b));
            let mut got = [0i16; 32];
            let mut want = [0i16; 32];

            eng.store(&mut got, eng.add(va, vb));
            emu.store(&mut want, emu.add(ea, eb));
            assert_eq!(got, want, "saturating add");

            eng.store(&mut got, eng.max(va, vb));
            emu.store(&mut want, emu.max(ea, eb));
            assert_eq!(got, want, "max");

            assert_eq!(eng.any_gt(va, vb), emu.any_gt(ea, eb));
            assert_eq!(eng.reduce_max(va), emu.reduce_max(ea));
            assert_eq!(eng.extract_high(va), emu.extract_high(ea));

            eng.store(&mut got, eng.shift_insert_low(va, i16::MIN));
            emu.store(&mut want, emu.shift_insert_low(ea, i16::MIN));
            assert_eq!(got, want, "vpermw shift");

            let mut g = [0i16; 32];
            let mut w = [0i16; 32];
            eng.store(&mut g, eng.weighted_scan_max(va, -3));
            emu.store(&mut w, emu.weighted_scan_max(ea, -3));
            assert_eq!(g, w, "weighted scan");
        }
    }

    #[test]
    fn i16x32_saturation_boundaries() {
        let Some(eng) = Avx512I16::new() else {
            return;
        };
        let a = [i16::MAX; 32];
        let b = [100i16; 32];
        let mut out = [0i16; 32];
        eng.store(&mut out, eng.add(eng.load(&a), eng.load(&b)));
        assert_eq!(out, [i16::MAX; 32]);
        let a = [i16::MIN; 32];
        let b = [-100i16; 32];
        eng.store(&mut out, eng.add(eng.load(&a), eng.load(&b)));
        assert_eq!(out, [i16::MIN; 32]);
    }
}
