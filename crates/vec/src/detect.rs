//! Runtime ISA detection and backend selection.
//!
//! The paper re-links kernels against a platform-specific module set
//! at build time; we do the equivalent at runtime. [`IsaSupport`]
//! reports what the host offers, [`Backend`] names a concrete
//! (ISA, element-width) engine, and [`best_backend`] picks the widest
//! available engine for a requested element width — preferring the
//! 512-bit engine (the paper's "many-core" shape) when present.

/// Vector ISAs an engine can be built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isa {
    /// Portable array emulation — always available.
    Emulated,
    /// 128-bit SSE4.1.
    Sse41,
    /// 256-bit AVX2 (the paper's Haswell platform).
    Avx2,
    /// 512-bit AVX-512F/BW (standing in for the paper's IMCI).
    Avx512,
}

impl Isa {
    /// Register width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Isa::Emulated => 0,
            Isa::Sse41 => 128,
            Isa::Avx2 => 256,
            Isa::Avx512 => 512,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Emulated => "emu",
            Isa::Sse41 => "sse4.1",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }
}

/// What the running host supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsaSupport {
    pub sse41: bool,
    pub avx2: bool,
    /// AVX-512 Foundation (i32 ops).
    pub avx512f: bool,
    /// AVX-512 Byte/Word (i8/i16 ops) — not required by any kernel
    /// here (IMCI had no sub-32-bit lanes either) but reported.
    pub avx512bw: bool,
}

impl IsaSupport {
    /// Probe the current CPU.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            Self {
                sse41: std::arch::is_x86_feature_detected!("sse4.1"),
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
                avx512bw: std::arch::is_x86_feature_detected!("avx512bw"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self {
                sse41: false,
                avx2: false,
                avx512f: false,
                avx512bw: false,
            }
        }
    }

    /// Best available ISA, widest first.
    pub fn best(self) -> Isa {
        if self.avx512f {
            Isa::Avx512
        } else if self.avx2 {
            Isa::Avx2
        } else if self.sse41 {
            Isa::Sse41
        } else {
            Isa::Emulated
        }
    }
}

/// A concrete engine choice: ISA plus score element width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Backend {
    pub isa: Isa,
    /// Element width in bits (8, 16 or 32).
    pub elem_bits: u32,
}

impl Backend {
    /// Lane count this backend runs.
    pub fn lanes(self) -> usize {
        match self.isa {
            // The emulated engine mirrors the 512-bit shape so that it
            // exercises the same segment geometry as the widest ISA.
            Isa::Emulated => (512 / self.elem_bits) as usize,
            isa => (isa.bits() / self.elem_bits) as usize,
        }
    }
}

impl core::fmt::Display for Backend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}/i{}x{}",
            self.isa.name(),
            self.elem_bits,
            self.lanes()
        )
    }
}

/// Pick the best backend for the requested element width on this host.
///
/// 32-bit elements prefer AVX-512 (the "many-core" 512-bit shape);
/// 8/16-bit elements prefer AVX2, since IMCI-style 512-bit engines do
/// not offer narrow lanes (and the paper only uses i32 on MIC).
pub fn best_backend(elem_bits: u32) -> Backend {
    let sup = IsaSupport::detect();
    let isa = match elem_bits {
        32 => sup.best(),
        16 => {
            if sup.avx512f && sup.avx512bw {
                Isa::Avx512
            } else if sup.avx2 {
                Isa::Avx2
            } else if sup.sse41 {
                Isa::Sse41
            } else {
                Isa::Emulated
            }
        }
        8 => {
            if sup.avx2 {
                Isa::Avx2
            } else if sup.sse41 {
                Isa::Sse41
            } else {
                Isa::Emulated
            }
        }
        other => panic!("unsupported element width: {other} bits"),
    };
    Backend { isa, elem_bits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_does_not_panic_and_is_consistent() {
        let sup = IsaSupport::detect();
        // AVX2 implies SSE4.1 on any real x86-64.
        if sup.avx2 {
            assert!(sup.sse41);
        }
        let _ = sup.best();
    }

    #[test]
    fn backend_lane_math() {
        let b = Backend {
            isa: Isa::Avx2,
            elem_bits: 16,
        };
        assert_eq!(b.lanes(), 16);
        let b = Backend {
            isa: Isa::Avx512,
            elem_bits: 32,
        };
        assert_eq!(b.lanes(), 16);
        let b = Backend {
            isa: Isa::Sse41,
            elem_bits: 32,
        };
        assert_eq!(b.lanes(), 4);
    }

    #[test]
    fn best_backend_returns_usable_widths() {
        for bits in [8, 16, 32] {
            let b = best_backend(bits);
            assert!(b.lanes().is_power_of_two());
            assert!(b.lanes() >= 4);
        }
    }

    #[test]
    fn display_format() {
        let b = Backend {
            isa: Isa::Avx2,
            elem_bits: 32,
        };
        assert_eq!(b.to_string(), "avx2/i32x8");
    }
}
