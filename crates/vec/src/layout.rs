//! The striped (Farrar) data layout used by every AAlign kernel.
//!
//! AAlign computes the DP table column by column along the subject,
//! holding one column (length = query length `m`) in buffers. A
//! column is stored *striped* (paper Fig. 4): with `v` vector lanes
//! and `k = ceil(m / v)` segments, segment `j` is one vector whose
//! lane `l` holds query position `q = l·k + j`.
//!
//! Key consequences the kernels rely on:
//!
//! * Moving from segment `j` to `j+1` advances every lane to its next
//!   query position — within-lane dependencies become *between-vector*
//!   dependencies, which is what makes the column vectorizable.
//! * Moving across the lane boundary (segment `k-1` of lane `l` to
//!   segment `0` of lane `l+1`) is done by
//!   [`SimdEngine::shift_insert_low`](crate::SimdEngine::shift_insert_low).
//! * Padding slots (`q ≥ m`) occupy the *suffix* of the column in
//!   query order: within each lane they are a suffix of the lane's
//!   chunk, and whenever a lane's chunk *end* is padding, every lane
//!   above it is entirely padding. Since values only flow toward
//!   higher query positions within a column, padding garbage can
//!   never reach a real position.

/// Geometry of a striped column: query length, lane count, segment
/// count and padded length.
///
/// ```
/// use aalign_vec::StripedLayout;
/// // Paper Fig. 4: 20 elements on 4 lanes → 5 segments; vector j
/// // holds query positions {j, j+5, j+10, j+15}.
/// let l = StripedLayout::new(20, 4);
/// assert_eq!(l.segments, 5);
/// assert_eq!(l.query_pos_of(0), 0);  // segment 0, lane 0
/// assert_eq!(l.query_pos_of(1), 5);  // segment 0, lane 1
/// assert_eq!(l.slot_of(5), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedLayout {
    /// Real query length `m` (> 0).
    pub len: usize,
    /// Vector lane count `v`.
    pub lanes: usize,
    /// Segments per column: `k = ceil(m / v)`.
    pub segments: usize,
}

impl StripedLayout {
    /// Compute the layout for a query of `len` residues on `lanes`-wide
    /// vectors.
    ///
    /// # Panics
    /// Panics if `len == 0` or `lanes == 0`.
    pub fn new(len: usize, lanes: usize) -> Self {
        assert!(len > 0, "query must be non-empty");
        assert!(lanes > 0, "lane count must be positive");
        let segments = len.div_ceil(lanes);
        Self {
            len,
            lanes,
            segments,
        }
    }

    /// Padded column length `k · v` (number of slots in each buffer).
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.segments * self.lanes
    }

    /// Number of padding slots (`padded_len - len`), always `< k`.
    #[inline]
    pub fn padding(&self) -> usize {
        self.padded_len() - self.len
    }

    /// Buffer slot of query position `q`: segment `q % k`, lane `q / k`
    /// → index `(q % k) · v + q / k`.
    #[inline]
    pub fn slot_of(&self, q: usize) -> usize {
        debug_assert!(q < self.padded_len());
        let seg = q % self.segments;
        let lane = q / self.segments;
        seg * self.lanes + lane
    }

    /// Query position stored in buffer slot `idx` (may be `≥ len` for
    /// padding slots).
    #[inline]
    pub fn query_pos_of(&self, idx: usize) -> usize {
        debug_assert!(idx < self.padded_len());
        let seg = idx / self.lanes;
        let lane = idx % self.lanes;
        lane * self.segments + seg
    }

    /// Scatter a linear column into striped order. Padding slots are
    /// filled with `pad`.
    pub fn stripe<T: Copy>(&self, linear: &[T], pad: T, out: &mut Vec<T>) {
        assert_eq!(linear.len(), self.len, "column length mismatch");
        out.clear();
        out.resize(self.padded_len(), pad);
        for (q, &x) in linear.iter().enumerate() {
            out[self.slot_of(q)] = x;
        }
    }

    /// Gather a striped buffer back into linear order (padding dropped).
    pub fn unstripe<T: Copy + Default>(&self, striped: &[T]) -> Vec<T> {
        assert_eq!(striped.len(), self.padded_len(), "striped length mismatch");
        let mut out = vec![T::default(); self.len];
        for q in 0..self.len {
            out[q] = striped[self.slot_of(q)];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_example_20_elements_5_vectors() {
        // Paper Fig. 4: 20 elements, 4 lanes → 5 segments; vector j
        // holds positions {j, j+5, j+10, j+15}.
        let l = StripedLayout::new(20, 4);
        assert_eq!(l.segments, 5);
        assert_eq!(l.padded_len(), 20);
        assert_eq!(l.padding(), 0);
        for j in 0..5 {
            for lane in 0..4 {
                assert_eq!(l.query_pos_of(j * 4 + lane), lane * 5 + j);
            }
        }
    }

    #[test]
    fn slot_and_query_pos_are_inverse() {
        for (m, v) in [(1, 4), (7, 4), (20, 4), (33, 8), (100, 16), (5, 8)] {
            let l = StripedLayout::new(m, v);
            for q in 0..l.padded_len() {
                assert_eq!(l.query_pos_of(l.slot_of(q)), q, "m={m} v={v} q={q}");
            }
        }
    }

    #[test]
    fn padding_never_feeds_real_positions() {
        // Padding count is < lanes; within a lane padding is a suffix
        // of the chunk; and if a lane's chunk END is padding, every
        // higher lane is entirely padding (so cross-lane shifts only
        // ever move padding into padding).
        for (m, v) in [(7, 4), (9, 8), (33, 8), (17, 16), (250, 8), (1, 4)] {
            let l = StripedLayout::new(m, v);
            assert!(l.padding() < v, "m={m} v={v}");
            let k = l.segments;
            for lane in 0..v {
                let chunk: Vec<bool> = (0..k).map(|j| lane * k + j >= m).collect();
                // padding is a suffix within the chunk
                let first_pad = chunk.iter().position(|&p| p).unwrap_or(k);
                assert!(
                    chunk[first_pad..].iter().all(|&p| p),
                    "m={m} v={v} lane={lane}: padding not a suffix"
                );
                // chunk end padded => all higher lanes fully padded
                if *chunk.last().unwrap() && first_pad == 0 {
                    // (chunk entirely padding — nothing more to check)
                }
                if *chunk.last().unwrap() {
                    for hl in lane + 1..v {
                        assert!(
                            hl * k >= m,
                            "m={m} v={v}: lane {hl} has real data after padded chunk end"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stripe_unstripe_round_trip() {
        let l = StripedLayout::new(13, 4);
        let col: Vec<i32> = (0..13).collect();
        let mut striped = Vec::new();
        l.stripe(&col, -1, &mut striped);
        assert_eq!(striped.len(), l.padded_len());
        assert_eq!(l.unstripe(&striped), col);
        // Padding slots hold the pad value.
        let pad_slots = striped.iter().filter(|&&x| x == -1).count();
        assert_eq!(pad_slots, l.padding());
    }

    #[test]
    fn single_element_query() {
        let l = StripedLayout::new(1, 8);
        assert_eq!(l.segments, 1);
        assert_eq!(l.slot_of(0), 0);
        assert_eq!(l.padding(), 7);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_length_rejected() {
        let _ = StripedLayout::new(0, 8);
    }
}
