//! Portable reference engine.
//!
//! [`EmuEngine<T, LANES>`] implements [`SimdEngine`] with plain arrays
//! and scalar loops. It serves three purposes:
//!
//! 1. **Semantics oracle** — every hardware backend is property-tested
//!    against it.
//! 2. **Portability fallback** — the full AAlign kernel stack runs on
//!    any architecture (the compiler will usually auto-vectorize the
//!    fixed-size loops reasonably well).
//! 3. **Width emulation** — a 16-lane i32 instance emulates the
//!    paper's 512-bit IMCI shape on machines without AVX-512.

use crate::elem::ScoreElem;
use crate::engine::SimdEngine;

/// Portable engine over `[T; LANES]` vectors.
///
/// `LANES` must be a power of two (all real vector ISAs are).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmuEngine<T, const LANES: usize> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: ScoreElem, const LANES: usize> EmuEngine<T, LANES> {
    /// Create the engine. Always available; panics at construction if
    /// `LANES` is not a power of two.
    pub fn new() -> Self {
        assert!(LANES.is_power_of_two(), "LANES must be a power of two");
        Self {
            _marker: core::marker::PhantomData,
        }
    }
}

impl<T: ScoreElem, const LANES: usize> SimdEngine for EmuEngine<T, LANES> {
    type Elem = T;
    type Vec = [T; LANES];

    const LANES: usize = LANES;
    const NAME: &'static str = "emu";

    #[inline(always)]
    fn splat(self, x: T) -> [T; LANES] {
        [x; LANES]
    }

    #[inline(always)]
    fn load(self, src: &[T]) -> [T; LANES] {
        let mut v = [T::ZERO; LANES];
        v.copy_from_slice(&src[..LANES]);
        v
    }

    #[inline(always)]
    fn store(self, dst: &mut [T], v: [T; LANES]) {
        dst[..LANES].copy_from_slice(&v);
    }

    #[inline(always)]
    fn add(self, a: [T; LANES], b: [T; LANES]) -> [T; LANES] {
        let mut r = [T::ZERO; LANES];
        for i in 0..LANES {
            r[i] = a[i].sat_add(b[i]);
        }
        r
    }

    #[inline(always)]
    fn max(self, a: [T; LANES], b: [T; LANES]) -> [T; LANES] {
        let mut r = [T::ZERO; LANES];
        for i in 0..LANES {
            r[i] = a[i].max2(b[i]);
        }
        r
    }

    #[inline(always)]
    fn any_gt(self, a: [T; LANES], b: [T; LANES]) -> bool {
        for i in 0..LANES {
            if a[i] > b[i] {
                return true;
            }
        }
        false
    }

    #[inline(always)]
    fn shift_insert_low(self, v: [T; LANES], fill: T) -> [T; LANES] {
        let mut r = [fill; LANES];
        r[1..LANES].copy_from_slice(&v[..LANES - 1]);
        r
    }

    #[inline(always)]
    fn extract_high(self, v: [T; LANES]) -> T {
        v[LANES - 1]
    }

    #[inline(always)]
    fn shift_insert_low_n(self, v: [T; LANES], n: usize, fill: T) -> [T; LANES] {
        let n = n.min(LANES);
        let mut r = [fill; LANES];
        r[n..].copy_from_slice(&v[..LANES - n]);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E4 = EmuEngine<i16, 4>;

    #[test]
    fn load_store_round_trip() {
        let eng = E4::new();
        let src = [1i16, -2, 3, -4];
        let mut dst = [0i16; 4];
        eng.store(&mut dst, eng.load(&src));
        assert_eq!(src, dst);
    }

    #[test]
    fn add_saturates_per_lane() {
        let eng = E4::new();
        let a = eng.load(&[i16::MAX, 5, i16::MIN, 0]);
        let b = eng.load(&[10, -3, -10, 0]);
        let mut out = [0i16; 4];
        eng.store(&mut out, eng.add(a, b));
        assert_eq!(out, [i16::MAX, 2, i16::MIN, 0]);
    }

    #[test]
    fn shift_insert_low_moves_lanes_up() {
        let eng = E4::new();
        let v = eng.load(&[10, 20, 30, 40]);
        let mut out = [0i16; 4];
        eng.store(&mut out, eng.shift_insert_low(v, -1));
        assert_eq!(out, [-1, 10, 20, 30]);
    }

    #[test]
    fn shift_insert_low_n_matches_iterated_single_shift() {
        let eng = E4::new();
        let v = eng.load(&[1, 2, 3, 4]);
        for n in 0..=5 {
            let mut a = v;
            for _ in 0..n.min(4) {
                a = eng.shift_insert_low(a, -9);
            }
            let b = eng.shift_insert_low_n(v, n, -9);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn any_gt_is_lanewise_influence_test() {
        let eng = E4::new();
        let a = eng.load(&[1, 2, 3, 4]);
        let b = eng.load(&[1, 2, 3, 4]);
        assert!(!eng.any_gt(a, b), "equal vectors do not influence");
        let c = eng.load(&[1, 2, 4, 4]);
        assert!(eng.any_gt(c, b));
        assert!(!eng.any_gt(b, c));
    }

    #[test]
    fn reduce_max_and_extract_high() {
        let eng = E4::new();
        let v = eng.load(&[-5, 42, 7, -1]);
        assert_eq!(eng.reduce_max(v), 42);
        assert_eq!(eng.extract_high(v), -1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_lanes_rejected() {
        let _ = EmuEngine::<i32, 3>::new();
    }
}
