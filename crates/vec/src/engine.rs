//! The [`SimdEngine`] trait — AAlign's vector-module interface.
//!
//! Table I of the paper defines two groups of modules:
//!
//! | paper module       | trait method                          |
//! |--------------------|---------------------------------------|
//! | `load_vector`      | [`SimdEngine::load`]                  |
//! | `store_vector`     | [`SimdEngine::store`]                 |
//! | `add_vector`/`add_array` | [`SimdEngine::add`] (+ a `load`)|
//! | `max_vector`       | [`SimdEngine::max`]                   |
//! | `set_vector`       | [`SimdEngine::lower_bound`]           |
//! | `rshift_x_fill`    | [`SimdEngine::shift_insert_low`]      |
//! | `influence_test`   | [`SimdEngine::any_gt`]                |
//! | `wgt_max_scan`     | [`crate::scan::wgt_max_scan_striped`] |
//!
//! Engines are zero-sized `Copy` tokens. Constructing a token for an
//! optional ISA (AVX2, AVX-512, SSE4.1) requires a runtime feature
//! check, so methods can be safe even though they call `unsafe`
//! intrinsics internally.

use crate::elem::ScoreElem;

/// A SIMD backend operating on vectors of [`ScoreElem`] lanes.
///
/// # Semantics contract
///
/// Every backend must be observationally identical to
/// [`crate::emu::EmuEngine`] with the same element type and lane
/// count; this is enforced by property tests. In particular:
///
/// * [`add`](Self::add) saturates for i8/i16 lanes and wraps for i32.
/// * [`shift_insert_low`](Self::shift_insert_low) moves every lane up
///   one index (lane `i` receives old lane `i-1`) and writes `fill`
///   into lane 0. In the striped layout this realigns a vector so
///   each lane's value meets the *next* query position of the lane
///   below — the paper's `rshift_x_fill` with `n = 1`.
/// * [`any_gt`](Self::any_gt) is the paper's `influence_test`: true
///   iff `a[i] > b[i]` for at least one lane.
pub trait SimdEngine: Copy + Send + Sync + 'static {
    /// Lane element type.
    type Elem: ScoreElem;
    /// Opaque vector register type.
    type Vec: Copy;

    /// Number of lanes in [`Self::Vec`].
    const LANES: usize;

    /// Human-readable backend name (e.g. `"avx2/i16x16"`).
    const NAME: &'static str;

    /// Broadcast a scalar to every lane.
    fn splat(self, x: Self::Elem) -> Self::Vec;

    /// Load `LANES` elements from the start of `src`.
    ///
    /// # Panics
    /// Panics (in debug builds at minimum) if `src.len() < LANES`.
    fn load(self, src: &[Self::Elem]) -> Self::Vec;

    /// Store `LANES` elements to the start of `dst`.
    fn store(self, dst: &mut [Self::Elem], v: Self::Vec);

    /// Lane-wise add; saturating for narrow elements (see trait docs).
    fn add(self, a: Self::Vec, b: Self::Vec) -> Self::Vec;

    /// Lane-wise maximum.
    fn max(self, a: Self::Vec, b: Self::Vec) -> Self::Vec;

    /// `influence_test`: does any lane of `a` exceed the same lane of `b`?
    fn any_gt(self, a: Self::Vec, b: Self::Vec) -> bool;

    /// `rshift_x_fill(v, 1, fill)`: lane 0 ← `fill`, lane i ← lane i−1.
    fn shift_insert_low(self, v: Self::Vec, fill: Self::Elem) -> Self::Vec;

    /// Extract the value in the highest lane.
    fn extract_high(self, v: Self::Vec) -> Self::Elem;

    /// Horizontal maximum across lanes. The default is allocation-free
    /// (log₂ LANES shift/max rounds, answer lands in the high lane).
    #[inline(always)]
    fn reduce_max(self, v: Self::Vec) -> Self::Elem {
        let mut m = v;
        let mut d = 1usize;
        while d < Self::LANES {
            let shifted = self.shift_insert_low_n(m, d, Self::Elem::NEG_INF);
            m = self.max(m, shifted);
            d *= 2;
        }
        self.extract_high(m)
    }

    /// Shift lanes up by `n` indices, filling the vacated low lanes:
    /// `rshift_x_fill(v, n, fill)`. Backends may override with native
    /// shuffles; the default iterates [`Self::shift_insert_low`].
    #[inline(always)]
    fn shift_insert_low_n(self, v: Self::Vec, n: usize, fill: Self::Elem) -> Self::Vec {
        let mut v = v;
        for _ in 0..n.min(Self::LANES) {
            v = self.shift_insert_low(v, fill);
        }
        v
    }

    /// The paper's `set_vector(m, i, g)` (Fig. 6): build the striped
    /// lower-bound vector whose lane `l` holds `init + l * step`
    /// (saturating). `step` is typically `k * gap_ext`, the weight of
    /// one whole lane-chunk of the striped layout.
    #[inline(always)]
    fn lower_bound(self, init: Self::Elem, step: Self::Elem) -> Self::Vec {
        // Stack buffer sized for the widest supported engine (i8×64);
        // only the first LANES slots are read. Keeps the per-column
        // hot path allocation-free.
        debug_assert!(Self::LANES <= 64);
        let mut buf = [Self::Elem::ZERO; 64];
        let mut acc = init;
        for slot in buf.iter_mut().take(Self::LANES) {
            *slot = acc;
            acc = acc.sat_add(step);
        }
        self.load(&buf)
    }

    /// Inclusive per-vector weighted max-scan across lanes
    /// (Kogge–Stone): returns `s` with
    /// `s[l] = max_{l' ≤ l} ( v[l'] + (l - l') * w )`.
    ///
    /// This is step 2 of the paper's `wgt_max_scan` orchestration
    /// (Fig. 8), where the distance weight per lane is `k * β`.
    #[inline(always)]
    fn weighted_scan_max(self, v: Self::Vec, w: Self::Elem) -> Self::Vec {
        let mut s = v;
        let mut d = 1usize;
        let mut wd = w;
        while d < Self::LANES {
            let shifted = self.shift_insert_low_n(s, d, Self::Elem::NEG_INF);
            s = self.max(s, self.add(shifted, self.splat(wd)));
            d *= 2;
            // wd for the next round is 2 * current distance weight.
            wd = wd.sat_add(wd);
        }
        s
    }
}

/// Convenience: load-add in one call (the paper's `add_array`).
#[inline(always)]
pub fn add_array<E: SimdEngine>(eng: E, src: &[E::Elem], v: E::Vec) -> E::Vec {
    let a = eng.load(src);
    eng.add(a, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::EmuEngine;

    type E8 = EmuEngine<i32, 8>;

    #[test]
    fn lower_bound_matches_fig6() {
        // Fig. 6: lane l = init + l * (k*g).
        let eng = E8::new();
        let v = eng.lower_bound(5, -3);
        let mut out = [0i32; 8];
        eng.store(&mut out, v);
        assert_eq!(out, [5, 2, -1, -4, -7, -10, -13, -16]);
    }

    #[test]
    fn shift_insert_low_n_zero_is_identity() {
        let eng = E8::new();
        let v = eng.lower_bound(0, 1);
        let s = eng.shift_insert_low_n(v, 0, -99);
        let (mut a, mut b) = ([0i32; 8], [0i32; 8]);
        eng.store(&mut a, v);
        eng.store(&mut b, s);
        assert_eq!(a, b);
    }

    #[test]
    fn shift_insert_low_n_saturates_at_lanes() {
        let eng = E8::new();
        let v = eng.lower_bound(1, 1);
        let s = eng.shift_insert_low_n(v, 100, -7);
        let mut out = [0i32; 8];
        eng.store(&mut out, s);
        assert_eq!(out, [-7; 8]);
    }

    #[test]
    fn weighted_scan_max_matches_scalar_model() {
        let eng = E8::new();
        let input = [3, -1, 10, 2, 2, 2, 40, -5];
        let w = -4;
        let v = eng.load(&input);
        let s = eng.weighted_scan_max(v, w);
        let mut got = [0i32; 8];
        eng.store(&mut got, s);
        for (l, &got_l) in got.iter().enumerate() {
            let want = (0..=l)
                .map(|lp| input[lp] + ((l - lp) as i32) * w)
                .max()
                .unwrap();
            assert_eq!(got_l, want, "lane {l}");
        }
    }

    #[test]
    fn add_array_loads_then_adds() {
        let eng = E8::new();
        let src = [1, 2, 3, 4, 5, 6, 7, 8];
        let v = eng.splat(10);
        let r = add_array(eng, &src, v);
        let mut out = [0i32; 8];
        eng.store(&mut out, r);
        assert_eq!(out, [11, 12, 13, 14, 15, 16, 17, 18]);
    }
}
