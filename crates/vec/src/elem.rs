//! Score element types.
//!
//! Alignment scores are small signed integers. The paper's kernels run
//! on 8-, 16- (AVX2) and 32-bit (AVX2 + IMCI) lanes; narrower lanes
//! give more parallelism but can overflow, which the kernels detect and
//! recover from by retrying at a wider type (the SWPS3 trick of
//! Sec. VI-C).
//!
//! All arithmetic on narrow types is *saturating*, matching the
//! `adds_epi8/16` instructions the paper's AVX2 modules use. 32-bit
//! lanes have no saturating add on AVX2/AVX-512 (nor on IMCI), so i32
//! uses wrapping adds and keeps its "minus infinity" sentinel far from
//! `i32::MIN` — exactly the headroom argument the original C kernels
//! rely on.

/// An integer type usable as an alignment score lane.
///
/// Implementations: [`i8`], [`i16`], [`i32`].
pub trait ScoreElem:
    Copy
    + Clone
    + PartialOrd
    + Ord
    + PartialEq
    + Eq
    + core::fmt::Debug
    + core::fmt::Display
    + Send
    + Sync
    + 'static
{
    /// The "minus infinity" sentinel. Adding any plausible penalty to
    /// it must not wrap past the representable minimum.
    const NEG_INF: Self;
    /// Additive zero.
    const ZERO: Self;
    /// Largest representable score (saturation ceiling).
    const MAX_SCORE: Self;
    /// Bits in the element (8, 16 or 32) — used for layout decisions.
    const BITS: u32;

    /// Scalar saturating add (wrapping for i32; see module docs).
    fn sat_add(self, rhs: Self) -> Self;
    /// Scalar max.
    fn max2(self, rhs: Self) -> Self;
    /// Widening conversion to i32 (always exact).
    fn to_i32(self) -> i32;
    /// Saturating conversion from i32.
    fn from_i32_sat(v: i32) -> Self;
    /// Exact conversion from i32; panics in debug if out of range.
    fn from_i32(v: i32) -> Self;
}

impl ScoreElem for i8 {
    const NEG_INF: Self = i8::MIN;
    const ZERO: Self = 0;
    const MAX_SCORE: Self = i8::MAX;
    const BITS: u32 = 8;

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
    #[inline(always)]
    fn max2(self, rhs: Self) -> Self {
        Ord::max(self, rhs)
    }
    #[inline(always)]
    fn to_i32(self) -> i32 {
        self as i32
    }
    #[inline(always)]
    fn from_i32_sat(v: i32) -> Self {
        v.clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }
    #[inline(always)]
    fn from_i32(v: i32) -> Self {
        debug_assert!(
            (i8::MIN as i32..=i8::MAX as i32).contains(&v),
            "score {v} out of i8 range"
        );
        v as i8
    }
}

impl ScoreElem for i16 {
    const NEG_INF: Self = i16::MIN;
    const ZERO: Self = 0;
    const MAX_SCORE: Self = i16::MAX;
    const BITS: u32 = 16;

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
    #[inline(always)]
    fn max2(self, rhs: Self) -> Self {
        Ord::max(self, rhs)
    }
    #[inline(always)]
    fn to_i32(self) -> i32 {
        self as i32
    }
    #[inline(always)]
    fn from_i32_sat(v: i32) -> Self {
        v.clamp(i16::MIN as i32, i16::MAX as i32) as i16
    }
    #[inline(always)]
    fn from_i32(v: i32) -> Self {
        debug_assert!(
            (i16::MIN as i32..=i16::MAX as i32).contains(&v),
            "score {v} out of i16 range"
        );
        v as i16
    }
}

impl ScoreElem for i32 {
    /// `i32::MIN / 4` leaves ≈1.6e9 of headroom below and can absorb
    /// any realistic accumulation of gap penalties without wrapping
    /// (wrapping adds are used for i32 — there is no 32-bit saturating
    /// vector add on AVX2, AVX-512 or IMCI).
    const NEG_INF: Self = i32::MIN / 4;
    const ZERO: Self = 0;
    const MAX_SCORE: Self = i32::MAX / 4;
    const BITS: u32 = 32;

    #[inline(always)]
    fn sat_add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
    #[inline(always)]
    fn max2(self, rhs: Self) -> Self {
        Ord::max(self, rhs)
    }
    #[inline(always)]
    fn to_i32(self) -> i32 {
        self
    }
    #[inline(always)]
    fn from_i32_sat(v: i32) -> Self {
        v
    }
    #[inline(always)]
    fn from_i32(v: i32) -> Self {
        v
    }
}

/// Returns true when a score computed at element type `E` is too close
/// to the saturation ceiling to be trusted: any single further add of
/// magnitude ≤ `headroom` could have saturated.
///
/// Used by the width-fallback logic (narrow kernel → retry wider),
/// mirroring SWPS3's char→short overflow escape.
#[inline]
pub fn near_saturation<E: ScoreElem>(score: E, headroom: i32) -> bool {
    score.to_i32() >= E::MAX_SCORE.to_i32() - headroom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_add_clamps_i8() {
        assert_eq!(100i8.sat_add(100), i8::MAX);
        assert_eq!((-100i8).sat_add(-100), i8::MIN);
        assert_eq!(5i8.sat_add(-3), 2);
    }

    #[test]
    fn saturating_add_clamps_i16() {
        assert_eq!(30_000i16.sat_add(30_000), i16::MAX);
        assert_eq!((-30_000i16).sat_add(-30_000), i16::MIN);
    }

    #[test]
    fn i32_neg_inf_has_headroom() {
        // Adding a large negative penalty many times must not wrap.
        let mut v = <i32 as ScoreElem>::NEG_INF;
        for _ in 0..1_000_000 {
            v = v.sat_add(-100);
        }
        assert!(v < 0, "stayed negative: {v}");
        assert!(v > i32::MIN / 2 - 200_000_000);
    }

    #[test]
    fn near_saturation_detects_i8_ceiling() {
        assert!(near_saturation(120i8, 11));
        assert!(!near_saturation(50i8, 11));
        assert!(near_saturation(i16::MAX - 1, 11));
    }

    #[test]
    fn from_i32_sat_round_trips_in_range() {
        for v in [-128, -1, 0, 1, 127] {
            assert_eq!(<i8 as ScoreElem>::from_i32_sat(v).to_i32(), v);
        }
        assert_eq!(<i8 as ScoreElem>::from_i32_sat(1000), 127);
        assert_eq!(<i16 as ScoreElem>::from_i32_sat(-1_000_000), i16::MIN);
    }
}
