//! 256-bit AVX2 backends (`i32x8`, `i16x16`, `i8x32`) — the paper's
//! multi-core CPU platform.
//!
//! AVX2 registers are two 128-bit lanes, so the element-wise
//! `rshift_x_fill` module cannot be a single byte-shift: exactly as the
//! paper's Fig. 7 describes, it is composed from a cross-lane
//! `permute2x128`, a per-lane `alignr`, and an insert/blend of the fill
//! value. The `influence_test` uses `cmpgt` + `movemask` (AVX2 has no
//! compare-into-mask-register; the paper notes the same workaround).
//!
//! # Safety
//! Constructors check `is_x86_feature_detected!("avx2")`; an engine
//! value is a proof the ISA is present.

#![allow(unsafe_code)]

use core::arch::x86_64::*;

#[cfg(test)]
use crate::elem::ScoreElem;
use crate::engine::SimdEngine;

/// AVX2 engine with 8 × i32 lanes.
#[derive(Debug, Clone, Copy)]
pub struct Avx2I32 {
    _priv: (),
}

/// AVX2 engine with 16 × i16 lanes.
#[derive(Debug, Clone, Copy)]
pub struct Avx2I16 {
    _priv: (),
}

/// AVX2 engine with 32 × i8 lanes (used by the SWPS3-like baseline).
#[derive(Debug, Clone, Copy)]
pub struct Avx2I8 {
    _priv: (),
}

macro_rules! avx2_ctor {
    ($t:ty) => {
        impl $t {
            /// Returns the engine if the CPU supports AVX2.
            pub fn new() -> Option<Self> {
                std::arch::is_x86_feature_detected!("avx2").then_some(Self { _priv: () })
            }
        }
    };
}
avx2_ctor!(Avx2I32);
avx2_ctor!(Avx2I16);
avx2_ctor!(Avx2I8);

/// `[0…0, v.low]` — the cross-lane half of the element shift
/// (paper Fig. 7's `permutevar` step).
///
/// # Safety
/// The caller must guarantee AVX2 is available (every caller is an
/// engine method, and the engine's constructor verified it).
#[inline(always)]
unsafe fn swap_low_to_high(v: __m256i) -> __m256i {
    // SAFETY: AVX2 availability is the function's own precondition.
    unsafe { _mm256_permute2x128_si256::<0x08>(v, v) }
}

impl SimdEngine for Avx2I32 {
    type Elem = i32;
    type Vec = __m256i;

    const LANES: usize = 8;
    const NAME: &'static str = "avx2/i32x8";

    #[inline(always)]
    fn splat(self, x: i32) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_set1_epi32(x) }
    }

    #[inline(always)]
    fn load(self, src: &[i32]) -> __m256i {
        assert!(src.len() >= 8);
        // SAFETY: AVX2 was verified by the constructor; the assert guarantees enough elements for the unaligned load.
        unsafe { _mm256_loadu_si256(src.as_ptr().cast()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32], v: __m256i) {
        assert!(dst.len() >= 8);
        // SAFETY: AVX2 was verified by the constructor; the assert guarantees enough elements for the unaligned store.
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast(), v) }
    }

    #[inline(always)]
    fn add(self, a: __m256i, b: __m256i) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_add_epi32(a, b) }
    }

    #[inline(always)]
    fn max(self, a: __m256i, b: __m256i) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_max_epi32(a, b) }
    }

    #[inline(always)]
    fn any_gt(self, a: __m256i, b: __m256i) -> bool {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_movemask_epi8(_mm256_cmpgt_epi32(a, b)) != 0 }
    }

    #[inline(always)]
    fn shift_insert_low(self, v: __m256i, fill: i32) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe {
            let swap = swap_low_to_high(v);
            let shifted = _mm256_alignr_epi8::<12>(v, swap);
            _mm256_blend_epi32::<0x01>(shifted, _mm256_set1_epi32(fill))
        }
    }

    #[inline(always)]
    fn extract_high(self, v: __m256i) -> i32 {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_extract_epi32::<7>(v) }
    }
}

impl SimdEngine for Avx2I16 {
    type Elem = i16;
    type Vec = __m256i;

    const LANES: usize = 16;
    const NAME: &'static str = "avx2/i16x16";

    #[inline(always)]
    fn splat(self, x: i16) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_set1_epi16(x) }
    }

    #[inline(always)]
    fn load(self, src: &[i16]) -> __m256i {
        assert!(src.len() >= 16);
        // SAFETY: AVX2 was verified by the constructor; the assert guarantees enough elements for the unaligned load.
        unsafe { _mm256_loadu_si256(src.as_ptr().cast()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i16], v: __m256i) {
        assert!(dst.len() >= 16);
        // SAFETY: AVX2 was verified by the constructor; the assert guarantees enough elements for the unaligned store.
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast(), v) }
    }

    #[inline(always)]
    fn add(self, a: __m256i, b: __m256i) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_adds_epi16(a, b) }
    }

    #[inline(always)]
    fn max(self, a: __m256i, b: __m256i) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_max_epi16(a, b) }
    }

    #[inline(always)]
    fn any_gt(self, a: __m256i, b: __m256i) -> bool {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_movemask_epi8(_mm256_cmpgt_epi16(a, b)) != 0 }
    }

    #[inline(always)]
    fn shift_insert_low(self, v: __m256i, fill: i16) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe {
            let swap = swap_low_to_high(v);
            let shifted = _mm256_alignr_epi8::<14>(v, swap);
            _mm256_insert_epi16::<0>(shifted, fill)
        }
    }

    #[inline(always)]
    fn extract_high(self, v: __m256i) -> i16 {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_extract_epi16::<15>(v) as i16 }
    }
}

impl SimdEngine for Avx2I8 {
    type Elem = i8;
    type Vec = __m256i;

    const LANES: usize = 32;
    const NAME: &'static str = "avx2/i8x32";

    #[inline(always)]
    fn splat(self, x: i8) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_set1_epi8(x) }
    }

    #[inline(always)]
    fn load(self, src: &[i8]) -> __m256i {
        assert!(src.len() >= 32);
        // SAFETY: AVX2 was verified by the constructor; the assert guarantees enough elements for the unaligned load.
        unsafe { _mm256_loadu_si256(src.as_ptr().cast()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i8], v: __m256i) {
        assert!(dst.len() >= 32);
        // SAFETY: AVX2 was verified by the constructor; the assert guarantees enough elements for the unaligned store.
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast(), v) }
    }

    #[inline(always)]
    fn add(self, a: __m256i, b: __m256i) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_adds_epi8(a, b) }
    }

    #[inline(always)]
    fn max(self, a: __m256i, b: __m256i) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_max_epi8(a, b) }
    }

    #[inline(always)]
    fn any_gt(self, a: __m256i, b: __m256i) -> bool {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_movemask_epi8(_mm256_cmpgt_epi8(a, b)) != 0 }
    }

    #[inline(always)]
    fn shift_insert_low(self, v: __m256i, fill: i8) -> __m256i {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe {
            let swap = swap_low_to_high(v);
            let shifted = _mm256_alignr_epi8::<15>(v, swap);
            _mm256_insert_epi8::<0>(shifted, fill)
        }
    }

    #[inline(always)]
    fn extract_high(self, v: __m256i) -> i8 {
        // SAFETY: AVX2 was verified by the constructor; register-only intrinsics.
        unsafe { _mm256_extract_epi8::<31>(v) as i8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::EmuEngine;

    fn pattern<T: ScoreElem>(seed: i32, n: usize) -> Vec<T> {
        (0..n as i32)
            .map(|i| T::from_i32_sat((seed.wrapping_mul(31).wrapping_add(i * 17)) % 120 - 40))
            .collect()
    }

    #[test]
    fn i32_matches_emulated_oracle() {
        let Some(eng) = Avx2I32::new() else {
            eprintln!("skipping: no avx2");
            return;
        };
        let emu = EmuEngine::<i32, 8>::new();
        for seed in 0..20 {
            let a: Vec<i32> = pattern(seed, 8);
            let b: Vec<i32> = pattern(seed + 100, 8);
            let (va, vb) = (eng.load(&a), eng.load(&b));
            let (ea, eb) = (emu.load(&a), emu.load(&b));
            let mut got = [0i32; 8];
            let mut want = [0i32; 8];

            eng.store(&mut got, eng.add(va, vb));
            emu.store(&mut want, emu.add(ea, eb));
            assert_eq!(got, want, "add seed={seed}");

            eng.store(&mut got, eng.max(va, vb));
            emu.store(&mut want, emu.max(ea, eb));
            assert_eq!(got, want, "max");

            assert_eq!(eng.any_gt(va, vb), emu.any_gt(ea, eb), "any_gt");
            assert_eq!(eng.reduce_max(va), emu.reduce_max(ea), "reduce");
            assert_eq!(eng.extract_high(va), emu.extract_high(ea));

            eng.store(&mut got, eng.shift_insert_low(va, -99));
            emu.store(&mut want, emu.shift_insert_low(ea, -99));
            assert_eq!(got, want, "shift crosses the 128-bit boundary");

            for d in 0..=8 {
                eng.store(&mut got, eng.shift_insert_low_n(va, d, 3));
                emu.store(&mut want, emu.shift_insert_low_n(ea, d, 3));
                assert_eq!(got, want, "shift_n d={d}");
            }
        }
    }

    #[test]
    fn i16_matches_emulated_oracle() {
        let Some(eng) = Avx2I16::new() else {
            eprintln!("skipping: no avx2");
            return;
        };
        let emu = EmuEngine::<i16, 16>::new();
        for seed in 0..20 {
            let a: Vec<i16> = pattern(seed, 16);
            let b: Vec<i16> = pattern(seed + 7, 16);
            let (va, vb) = (eng.load(&a), eng.load(&b));
            let (ea, eb) = (emu.load(&a), emu.load(&b));
            let mut got = [0i16; 16];
            let mut want = [0i16; 16];

            eng.store(&mut got, eng.add(va, vb));
            emu.store(&mut want, emu.add(ea, eb));
            assert_eq!(got, want, "adds saturate identically");

            eng.store(&mut got, eng.shift_insert_low(va, i16::MIN));
            emu.store(&mut want, emu.shift_insert_low(ea, i16::MIN));
            assert_eq!(got, want, "16-bit shift uses alignr+insert (Fig 7)");

            assert_eq!(eng.any_gt(va, vb), emu.any_gt(ea, eb));
            assert_eq!(eng.reduce_max(va), emu.reduce_max(ea));
        }
    }

    #[test]
    fn i16_saturating_add_boundaries() {
        let Some(eng) = Avx2I16::new() else {
            return;
        };
        let a = [i16::MAX; 16];
        let b = [1i16; 16];
        let mut out = [0i16; 16];
        eng.store(&mut out, eng.add(eng.load(&a), eng.load(&b)));
        assert_eq!(out, [i16::MAX; 16]);
    }

    #[test]
    fn i8_matches_emulated_oracle() {
        let Some(eng) = Avx2I8::new() else {
            eprintln!("skipping: no avx2");
            return;
        };
        let emu = EmuEngine::<i8, 32>::new();
        for seed in 0..20 {
            let a: Vec<i8> = pattern(seed, 32);
            let b: Vec<i8> = pattern(seed + 3, 32);
            let (va, vb) = (eng.load(&a), eng.load(&b));
            let (ea, eb) = (emu.load(&a), emu.load(&b));
            let mut got = [0i8; 32];
            let mut want = [0i8; 32];

            eng.store(&mut got, eng.add(va, vb));
            emu.store(&mut want, emu.add(ea, eb));
            assert_eq!(got, want);

            eng.store(&mut got, eng.shift_insert_low(va, -128));
            emu.store(&mut want, emu.shift_insert_low(ea, -128));
            assert_eq!(got, want);

            assert_eq!(eng.any_gt(va, vb), emu.any_gt(ea, eb));
            assert_eq!(eng.reduce_max(va), emu.reduce_max(ea));
            assert_eq!(eng.extract_high(va), emu.extract_high(ea));
        }
    }

    #[test]
    fn lower_bound_ramp_on_hardware() {
        let Some(eng) = Avx2I32::new() else {
            return;
        };
        let v = eng.lower_bound(10, -5);
        let mut out = [0i32; 8];
        eng.store(&mut out, v);
        assert_eq!(out, [10, 5, 0, -5, -10, -15, -20, -25]);
    }
}
