//! `wgt_max_scan` — the weighted max-scan at the heart of striped-scan.
//!
//! For a column of tentative scores `t[0..m]` the scan computes, for
//! every query position `q`,
//!
//! ```text
//! out[q] = max_{ l ∈ {-1, 0, …, q-1} } ( t[l] + open + (q-1-l)·ext )
//! ```
//!
//! with the virtual boundary cell `t[-1] = init` (the paper's
//! `INIT_T`). `open` is the paper's `GAP_UP` (θ+β) and `ext` is
//! `GAP_UP_EXT` (β). `out[q]` is exactly the up-gap table `U_{i,q}`
//! of Eq. (4), which is why one scan plus one max suffices to repair
//! the dependency the tentative pass ignored (the classic argument:
//! a gap routed through a corrected cell is never better, because
//! θ ≤ 0).
//!
//! Three implementations are provided:
//!
//! * [`wgt_max_scan_naive`] — the O(m²) definition, tests only;
//! * [`wgt_max_scan_scalar`] — the O(m) sequential recurrence;
//! * [`wgt_max_scan_striped`] — the vectorized 3-step orchestration of
//!   paper Fig. 8, operating directly on striped buffers.

use crate::elem::ScoreElem;
use crate::engine::SimdEngine;
use crate::layout::StripedLayout;

/// Scan parameters: boundary value and the two gap weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanParams<T> {
    /// Boundary score `t[-1]` (paper `INIT_T`, i.e. `T_{i,0}`).
    pub init: T,
    /// Weight of the first gapped position (paper `GAP_UP` = θ+β).
    pub open: T,
    /// Weight of each further position (paper `GAP_UP_EXT` = β).
    pub ext: T,
}

/// O(m²) literal definition. Test oracle; do not use in kernels.
#[allow(clippy::needless_range_loop)] // DP recurrences read clearest with indices
pub fn wgt_max_scan_naive<T: ScoreElem>(input: &[T], p: ScanParams<T>, out: &mut [T]) {
    assert_eq!(input.len(), out.len());
    for q in 0..input.len() {
        // l = -1 term: init + open + q·ext
        let mut best = p.init.sat_add(p.open);
        for _ in 0..q {
            best = best.sat_add(p.ext);
        }
        for l in 0..q {
            let mut cand = input[l].sat_add(p.open);
            for _ in 0..(q - 1 - l) {
                cand = cand.sat_add(p.ext);
            }
            best = best.max2(cand);
        }
        out[q] = best;
    }
}

/// O(m) sequential recurrence:
/// `out[0] = init + open`, `out[q] = max(out[q-1] + ext, t[q-1] + open)`.
///
/// ```
/// use aalign_vec::scan::{wgt_max_scan_scalar, ScanParams};
/// let t = [5, 0, 9];
/// let mut out = [0; 3];
/// wgt_max_scan_scalar(&t, ScanParams { init: 0, open: -3, ext: -1 }, &mut out);
/// // out[2] = max(out[1] + ext, t[1] + open) with out[1] = t[0] + open = 2
/// assert_eq!(out, [-3, 2, 1]);
/// ```
pub fn wgt_max_scan_scalar<T: ScoreElem>(input: &[T], p: ScanParams<T>, out: &mut [T]) {
    assert_eq!(input.len(), out.len());
    if input.is_empty() {
        return;
    }
    let mut run = p.init.sat_add(p.open);
    out[0] = run;
    for q in 1..input.len() {
        run = run.sat_add(p.ext).max2(input[q - 1].sat_add(p.open));
        out[q] = run;
    }
}

/// Vectorized weighted max-scan over a **striped** buffer
/// (paper Fig. 8). `input` and `out` are striped buffers of
/// `layout.padded_len()` slots; `out` may not alias `input`.
///
/// The three steps:
/// 1. *inter-vector scan*: one pass over the `k` segments propagates
///    the recurrence within each lane chunk, leaving the per-chunk
///    exclusive scan in `out` and the per-chunk carries in a register;
/// 2. *intra-vector scan*: a Kogge–Stone weighted max-scan (weight
///    `k·ext`) turns the carries into per-lane incoming values, and the
///    boundary `init` enters through a lower-bound ramp;
/// 3. *inter-vector broadcast*: a second pass over the segments folds
///    the carries into `out` with weight `ext` per segment.
#[inline(always)]
pub fn wgt_max_scan_striped<E: SimdEngine>(
    eng: E,
    layout: StripedLayout,
    input: &[E::Elem],
    out: &mut [E::Elem],
    p: ScanParams<E::Elem>,
) {
    let k = layout.segments;
    let lanes = E::LANES;
    assert_eq!(layout.lanes, lanes, "layout built for a different engine");
    assert_eq!(input.len(), layout.padded_len());
    assert_eq!(out.len(), layout.padded_len());

    let v_open = eng.splat(p.open);
    let v_ext = eng.splat(p.ext);
    let neg_inf = eng.splat(E::Elem::NEG_INF);

    // Step 1: within-lane exclusive scan, segment by segment.
    //   u[0] = -inf;  u[j] = max(u[j-1] + ext, t[j-1] + open)
    // and the carry A = value the chunk would pass to position k.
    let mut run = neg_inf;
    for j in 0..k {
        eng.store(&mut out[j * lanes..], run);
        let t = eng.load(&input[j * lanes..]);
        run = eng.max(eng.add(run, v_ext), eng.add(t, v_open));
    }
    let carries = run; // A[l] = carry out of lane l's chunk

    // Step 2: cross-lane exclusive weighted scan of the carries with
    // per-lane distance weight k·ext, seeded with the boundary ramp
    //   init + open + (l·k)·ext   (the l' = -1 term of the definition).
    let chunk_w = mul_small(p.ext, k);
    let inclusive = eng.weighted_scan_max(carries, chunk_w);
    let exclusive = eng.shift_insert_low(inclusive, E::Elem::NEG_INF);
    let boundary = eng.lower_bound(p.init.sat_add(p.open), chunk_w);
    let mut carry_in = eng.max(exclusive, boundary);

    // Step 3: fold carries back in: position offset j inside a chunk
    // adds j·ext on top of the chunk's incoming value.
    for j in 0..k {
        let u = eng.load(&out[j * lanes..]);
        let merged = eng.max(u, carry_in);
        eng.store(&mut out[j * lanes..], merged);
        carry_in = eng.add(carry_in, v_ext);
    }
}

/// Saturating small-integer multiply used for chunk weights.
#[inline(always)]
fn mul_small<T: ScoreElem>(x: T, n: usize) -> T {
    let wide = x.to_i32().saturating_mul(n as i32);
    T::from_i32_sat(wide)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::EmuEngine;

    fn params(init: i32, open: i32, ext: i32) -> ScanParams<i32> {
        ScanParams { init, open, ext }
    }

    #[test]
    fn scalar_matches_naive_small() {
        let input = vec![5, -2, 9, 0, 3, 3, -7, 12];
        let p = params(0, -11, -1);
        let mut a = vec![0; input.len()];
        let mut b = vec![0; input.len()];
        wgt_max_scan_naive(&input, p, &mut a);
        wgt_max_scan_scalar(&input, p, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn scalar_first_element_is_boundary_open() {
        let input = vec![100, 100, 100];
        let p = params(7, -3, -1);
        let mut out = vec![0; 3];
        wgt_max_scan_scalar(&input, p, &mut out);
        assert_eq!(out[0], 7 - 3);
        assert_eq!(out[1], 100 - 3);
    }

    #[test]
    fn striped_matches_scalar_exhaustive_shapes() {
        // Many (m, lanes) shapes including ones with padding.
        for m in 1..=40 {
            run_case::<4>(m);
            run_case::<8>(m);
            run_case::<16>(m);
        }
    }

    fn run_case<const LANES: usize>(m: usize) {
        let eng = EmuEngine::<i32, LANES>::new();
        let layout = StripedLayout::new(m, LANES);
        let p = params(-4, -12, -2);
        // Deterministic pseudo-random input.
        let linear: Vec<i32> = (0..m)
            .map(|i| ((i as i32).wrapping_mul(2_654_435_761u32 as i32) >> 24) % 50 - 10)
            .collect();
        let mut expect = vec![0; m];
        wgt_max_scan_scalar(&linear, p, &mut expect);

        let mut striped_in = Vec::new();
        layout.stripe(&linear, i32::NEG_INF, &mut striped_in);
        let mut striped_out = vec![0; layout.padded_len()];
        wgt_max_scan_striped(eng, layout, &striped_in, &mut striped_out, p);

        for q in 0..m {
            assert_eq!(
                striped_out[layout.slot_of(q)],
                expect[q],
                "m={m} lanes={LANES} q={q}"
            );
        }
    }

    #[test]
    fn striped_handles_positive_init() {
        let eng = EmuEngine::<i32, 8>::new();
        let m = 19;
        let layout = StripedLayout::new(m, 8);
        let p = params(40, -10, -1);
        let linear: Vec<i32> = (0..m as i32).collect();
        let mut expect = vec![0; m];
        wgt_max_scan_scalar(&linear, p, &mut expect);
        let mut sin = Vec::new();
        layout.stripe(&linear, i32::NEG_INF, &mut sin);
        let mut sout = vec![0; layout.padded_len()];
        wgt_max_scan_striped(eng, layout, &sin, &mut sout, p);
        for q in 0..m {
            assert_eq!(sout[layout.slot_of(q)], expect[q], "q={q}");
        }
    }

    #[test]
    fn naive_empty_input_is_noop() {
        let p = params(0, -1, -1);
        let mut out: Vec<i32> = vec![];
        wgt_max_scan_naive::<i32>(&[], p, &mut out);
        wgt_max_scan_scalar::<i32>(&[], p, &mut out);
    }

    #[test]
    fn i16_saturating_scan_does_not_wrap() {
        let input = vec![i16::MIN; 12];
        let p = ScanParams {
            init: i16::MIN,
            open: -100,
            ext: -100,
        };
        let mut out = vec![0i16; 12];
        wgt_max_scan_scalar(&input, p, &mut out);
        assert!(out.iter().all(|&x| x == i16::MIN));
    }
}
