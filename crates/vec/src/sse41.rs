//! 128-bit SSE4.1 backends (`i32x4`, `i16x8`).
//!
//! These are the narrowest hardware engines — the shape Farrar's
//! original striped Smith-Waterman ran on. They are mainly useful as
//! an additional point in the backend-ablation benchmarks; AVX2 /
//! AVX-512 are the paper's platforms.
//!
//! # Safety
//! Every constructor checks `is_x86_feature_detected!("sse4.1")`, so a
//! value of these types proves the ISA is present; the intrinsics
//! called by the (safe) trait methods are therefore always available.

#![allow(unsafe_code)]

use core::arch::x86_64::*;

use crate::engine::SimdEngine;

/// SSE4.1 engine with 4 × i32 lanes.
#[derive(Debug, Clone, Copy)]
pub struct Sse41I32 {
    _priv: (),
}

/// SSE4.1 engine with 8 × i16 lanes.
#[derive(Debug, Clone, Copy)]
pub struct Sse41I16 {
    _priv: (),
}

impl Sse41I32 {
    /// Returns the engine if the CPU supports SSE4.1.
    pub fn new() -> Option<Self> {
        std::arch::is_x86_feature_detected!("sse4.1").then_some(Self { _priv: () })
    }
}

impl Sse41I16 {
    /// Returns the engine if the CPU supports SSE4.1.
    pub fn new() -> Option<Self> {
        std::arch::is_x86_feature_detected!("sse4.1").then_some(Self { _priv: () })
    }
}

impl SimdEngine for Sse41I32 {
    type Elem = i32;
    type Vec = __m128i;

    const LANES: usize = 4;
    const NAME: &'static str = "sse4.1/i32x4";

    #[inline(always)]
    fn splat(self, x: i32) -> __m128i {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_set1_epi32(x) }
    }

    #[inline(always)]
    fn load(self, src: &[i32]) -> __m128i {
        assert!(src.len() >= 4);
        // SAFETY: SSE4.1 was verified by the constructor; the assert guarantees enough elements for the unaligned load.
        unsafe { _mm_loadu_si128(src.as_ptr().cast()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32], v: __m128i) {
        assert!(dst.len() >= 4);
        // SAFETY: SSE4.1 was verified by the constructor; the assert guarantees enough elements for the unaligned store.
        unsafe { _mm_storeu_si128(dst.as_mut_ptr().cast(), v) }
    }

    #[inline(always)]
    fn add(self, a: __m128i, b: __m128i) -> __m128i {
        // i32 lanes use wrapping adds (no 32-bit saturating add exists).
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_add_epi32(a, b) }
    }

    #[inline(always)]
    fn max(self, a: __m128i, b: __m128i) -> __m128i {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_max_epi32(a, b) }
    }

    #[inline(always)]
    fn any_gt(self, a: __m128i, b: __m128i) -> bool {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_movemask_epi8(_mm_cmpgt_epi32(a, b)) != 0 }
    }

    #[inline(always)]
    fn shift_insert_low(self, v: __m128i, fill: i32) -> __m128i {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe {
            let shifted = _mm_slli_si128::<4>(v);
            _mm_insert_epi32::<0>(shifted, fill)
        }
    }

    #[inline(always)]
    fn extract_high(self, v: __m128i) -> i32 {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_extract_epi32::<3>(v) }
    }

    #[inline(always)]
    fn reduce_max(self, v: __m128i) -> i32 {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe {
            let m = _mm_max_epi32(v, _mm_shuffle_epi32::<0b01_00_11_10>(v));
            let m = _mm_max_epi32(m, _mm_shuffle_epi32::<0b00_01_10_11>(m));
            _mm_extract_epi32::<0>(m)
        }
    }
}

impl SimdEngine for Sse41I16 {
    type Elem = i16;
    type Vec = __m128i;

    const LANES: usize = 8;
    const NAME: &'static str = "sse4.1/i16x8";

    #[inline(always)]
    fn splat(self, x: i16) -> __m128i {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_set1_epi16(x) }
    }

    #[inline(always)]
    fn load(self, src: &[i16]) -> __m128i {
        assert!(src.len() >= 8);
        // SAFETY: SSE4.1 was verified by the constructor; the assert guarantees enough elements for the unaligned load.
        unsafe { _mm_loadu_si128(src.as_ptr().cast()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i16], v: __m128i) {
        assert!(dst.len() >= 8);
        // SAFETY: SSE4.1 was verified by the constructor; the assert guarantees enough elements for the unaligned store.
        unsafe { _mm_storeu_si128(dst.as_mut_ptr().cast(), v) }
    }

    #[inline(always)]
    fn add(self, a: __m128i, b: __m128i) -> __m128i {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_adds_epi16(a, b) }
    }

    #[inline(always)]
    fn max(self, a: __m128i, b: __m128i) -> __m128i {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_max_epi16(a, b) }
    }

    #[inline(always)]
    fn any_gt(self, a: __m128i, b: __m128i) -> bool {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_movemask_epi8(_mm_cmpgt_epi16(a, b)) != 0 }
    }

    #[inline(always)]
    fn shift_insert_low(self, v: __m128i, fill: i16) -> __m128i {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe {
            let shifted = _mm_slli_si128::<2>(v);
            _mm_insert_epi16::<0>(shifted, fill as i32)
        }
    }

    #[inline(always)]
    fn extract_high(self, v: __m128i) -> i16 {
        // SAFETY: SSE4.1 was verified by the constructor; register-only intrinsics.
        unsafe { _mm_extract_epi16::<7>(v) as i16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::EmuEngine;

    /// Compare every engine op against the emulated oracle on a grid
    /// of values that includes the saturation boundaries.
    fn cross_check_i32(eng: Sse41I32) {
        let emu = EmuEngine::<i32, 4>::new();
        let samples: &[[i32; 4]] = &[
            [0, 1, -1, i32::MAX / 4],
            [i32::MIN / 4, 7, -7, 100],
            [5, 5, 5, 5],
            [-3, 12, 0, -1000],
        ];
        for &a in samples {
            for &b in samples {
                let (va, vb) = (eng.load(&a), eng.load(&b));
                let (ea, eb) = (emu.load(&a), emu.load(&b));
                let mut got = [0i32; 4];
                let mut want = [0i32; 4];

                eng.store(&mut got, eng.add(va, vb));
                emu.store(&mut want, emu.add(ea, eb));
                assert_eq!(got, want, "add {a:?} {b:?}");

                eng.store(&mut got, eng.max(va, vb));
                emu.store(&mut want, emu.max(ea, eb));
                assert_eq!(got, want, "max");

                assert_eq!(eng.any_gt(va, vb), emu.any_gt(ea, eb), "any_gt");

                eng.store(&mut got, eng.shift_insert_low(va, -42));
                emu.store(&mut want, emu.shift_insert_low(ea, -42));
                assert_eq!(got, want, "shift");

                assert_eq!(eng.extract_high(va), emu.extract_high(ea));
                assert_eq!(eng.reduce_max(va), emu.reduce_max(ea));
            }
        }
    }

    #[test]
    fn i32_matches_emulated_oracle() {
        let Some(eng) = Sse41I32::new() else {
            eprintln!("skipping: no sse4.1");
            return;
        };
        cross_check_i32(eng);
    }

    #[test]
    fn i16_saturation_and_shift() {
        let Some(eng) = Sse41I16::new() else {
            eprintln!("skipping: no sse4.1");
            return;
        };
        let emu = EmuEngine::<i16, 8>::new();
        let a = [i16::MAX, -5, 0, 1, 2, 3, i16::MIN, 9];
        let b = [100, -100, 0, 0, 0, 0, -100, 1];
        let (va, vb) = (eng.load(&a), eng.load(&b));
        let (ea, eb) = (emu.load(&a), emu.load(&b));
        let mut got = [0i16; 8];
        let mut want = [0i16; 8];
        eng.store(&mut got, eng.add(va, vb));
        emu.store(&mut want, emu.add(ea, eb));
        assert_eq!(got, want);
        eng.store(&mut got, eng.shift_insert_low(va, -7));
        emu.store(&mut want, emu.shift_insert_low(ea, -7));
        assert_eq!(got, want);
        assert_eq!(eng.any_gt(va, vb), emu.any_gt(ea, eb));
        assert_eq!(eng.extract_high(va), 9);
        assert_eq!(eng.reduce_max(va), i16::MAX);
    }
}
