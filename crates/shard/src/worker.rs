//! One shard child process and its line-protocol plumbing.
//!
//! A [`Worker`] wraps an `aalign serve --stdio` child: requests go
//! down piped stdin as JSON-RPC lines, responses come back through a
//! dedicated reader thread feeding an `mpsc` channel — the same
//! shape the stdio daemon itself uses — so every receive can carry a
//! deadline instead of blocking forever on a wedged child.

use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use aalign_obs::wire::{obj, JsonValue};

/// How a receive failed.
#[derive(Debug)]
pub enum RecvError {
    /// No matching response arrived before the deadline. The child
    /// may be healthy but still computing — the caller decides
    /// whether that is fatal.
    TimedOut,
    /// The child's stdout reached EOF: the process died or closed
    /// its pipe. Always fatal for the worker.
    Closed,
    /// Transport I/O failure (write or read). Fatal for the worker.
    Io(io::Error),
}

impl RecvError {
    /// True when the child itself is gone (vs possibly just slow).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, RecvError::TimedOut)
    }
}

/// The command line a shard child runs, minus the `--db` argument
/// (the supervisor appends each shard's own FASTA path).
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Executable to spawn (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments up to but excluding `--db <shard.fa>` — e.g.
    /// `["serve", "--stdio", "--threads", "1", "--open", "-10"]`.
    /// Aligner configuration must ride here so every child scores
    /// exactly like the reference single-process engine.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// Command running `program serve --stdio <extra…>`.
    pub fn serve_stdio(program: impl Into<PathBuf>, extra: &[String]) -> Self {
        let mut args = vec!["serve".to_string(), "--stdio".to_string()];
        args.extend(extra.iter().cloned());
        WorkerCommand {
            program: program.into(),
            args,
        }
    }
}

/// Send `sig` to a process (declaration-only `kill(2)`, mirroring the
/// daemon's `signal(2)` latch). No-op off unix.
#[cfg(unix)]
pub(crate) fn signal_pid(pid: u32, sig: i32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // SAFETY: kill(2) with its documented signature, aimed at a child
    // this process spawned; a stale pid at worst returns ESRCH, which
    // is discarded.
    unsafe {
        let _ = kill(pid as i32, sig);
    }
}

#[cfg(not(unix))]
pub(crate) fn signal_pid(_pid: u32, _sig: i32) {}

/// SIGTERM's number — forwarded to children during graceful drain.
pub(crate) const SIGTERM: i32 = 15;

/// One live shard child.
#[derive(Debug)]
pub struct Worker {
    child: Child,
    stdin: ChildStdin,
    rx: mpsc::Receiver<io::Result<String>>,
    reaped: bool,
}

impl Worker {
    /// Spawn `cmd` with `--db db_path` appended, stdio piped, and the
    /// reader thread running. The child's stderr is inherited so its
    /// own drain/flight diagnostics stay visible under the
    /// supervisor's.
    pub fn spawn(cmd: &WorkerCommand, db_path: &Path) -> io::Result<Worker> {
        let mut child = Command::new(&cmd.program)
            .args(&cmd.args)
            .arg("--db")
            .arg(db_path)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped child stdin");
        let stdout = child.stdout.take().expect("piped child stdout");
        let (tx, rx) = mpsc::channel::<io::Result<String>>();
        std::thread::Builder::new()
            .name("aalign-shard-reader".to_string())
            .spawn(move || {
                for line in BufReader::new(stdout).lines() {
                    let stop = line.is_err();
                    if tx.send(line).is_err() || stop {
                        break;
                    }
                }
                // Dropping `tx` signals EOF to every pending receive.
            })?;
        Ok(Worker {
            child,
            stdin,
            rx,
            reaped: false,
        })
    }

    /// OS process id.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Write one line (request) to the child.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stdin.write_all(line.as_bytes())?;
        self.stdin.write_all(b"\n")?;
        self.stdin.flush()
    }

    /// Receive the next response line, waiting no later than
    /// `deadline`.
    pub fn recv_line(&mut self, deadline: Instant) -> Result<String, RecvError> {
        let now = Instant::now();
        if now >= deadline {
            return Err(RecvError::TimedOut);
        }
        match self.rx.recv_timeout(deadline - now) {
            Ok(Ok(line)) => Ok(line),
            Ok(Err(e)) => Err(RecvError::Io(e)),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvError::TimedOut),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    /// Receive until the response whose `id` equals `rpc_id` arrives
    /// (stale responses from abandoned earlier calls are discarded —
    /// retries are idempotent by request id).
    pub fn recv_matching(
        &mut self,
        rpc_id: u64,
        deadline: Instant,
    ) -> Result<JsonValue, RecvError> {
        loop {
            let line = self.recv_line(deadline)?;
            let Ok(doc) = JsonValue::parse(&line) else {
                continue;
            };
            if doc.get("id").and_then(JsonValue::as_u64) == Some(rpc_id) {
                return Ok(doc);
            }
        }
    }

    /// Render the JSON-RPC request line for (`rpc_id`, `method`,
    /// `params`).
    pub fn request_line(rpc_id: u64, method: &str, params: JsonValue) -> String {
        obj(vec![
            ("jsonrpc", "2.0".into()),
            ("id", rpc_id.into()),
            ("method", method.into()),
            ("params", params),
        ])
        .render()
    }

    /// One full JSON-RPC round trip.
    pub fn call(
        &mut self,
        rpc_id: u64,
        method: &str,
        params: JsonValue,
        deadline: Instant,
    ) -> Result<JsonValue, RecvError> {
        let line = Self::request_line(rpc_id, method, params);
        self.send_line(&line).map_err(RecvError::Io)?;
        self.recv_matching(rpc_id, deadline)
    }

    /// Non-blocking liveness check (`try_wait` reaping: a zombie is
    /// collected the moment this observes the exit).
    pub fn is_alive(&mut self) -> bool {
        match self.child.try_wait() {
            Ok(None) => true,
            Ok(Some(_)) => {
                self.reaped = true;
                false
            }
            Err(_) => false,
        }
    }

    /// Forward SIGTERM (graceful-drain first step).
    pub fn sigterm(&self) {
        signal_pid(self.child.id(), SIGTERM);
    }

    /// SIGKILL without waiting (chaos hook / wedged-child response).
    pub fn sigkill(&mut self) {
        let _ = self.child.kill();
    }

    /// Poll for exit up to `grace`; true if the child exited (and was
    /// reaped) in time.
    pub fn wait_with_grace(&mut self, grace: Duration) -> bool {
        let deadline = Instant::now() + grace;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => {
                    self.reaped = true;
                    return true;
                }
                Ok(None) => {}
                Err(_) => return false,
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// SIGKILL and reap, unconditionally.
    pub fn kill_and_reap(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.reaped = true;
    }
}

impl Drop for Worker {
    /// A dropped worker never leaks a process or a zombie: anything
    /// not already reaped is killed and waited for.
    fn drop(&mut self) {
        if !self.reaped {
            self.kill_and_reap();
        }
    }
}
