//! # aalign-shard — fault-tolerant multi-process shard supervision
//!
//! One search process is one failure domain: a segfault, OOM kill,
//! or wedged worker takes down the whole query. This crate splits a
//! [`SeqDatabase`] into N contiguous shards, runs one `aalign serve
//! --stdio` child per shard, and merges per-shard [`SearchReport`]s
//! through the engine's own rank order — so an N-shard answer is
//! bit-identical to a single-process sweep, while any single child
//! can die without losing the query.
//!
//! Layers:
//!
//! * [`worker`] — one child process: spawn with piped stdio, a
//!   dedicated reader thread (so receives can time out), JSON-RPC
//!   call/response over the PR 7 line protocol, SIGTERM→grace→SIGKILL
//!   teardown. No new serialization: children speak exactly what
//!   `aalign serve --stdio` speaks.
//! * [`supervisor`] — the robustness core: contiguous partitioning
//!   with `db_index` rebasing, per-query fan-out with the deadline
//!   decremented by elapsed supervisor time, crash detection via
//!   `try_wait` reaping + heartbeat `health` pings, one idempotent
//!   retry on a respawned child, capped-exponential-backoff respawn
//!   ([`aalign_core::retry::Backoff`]), a K-deaths-in-window circuit
//!   breaker, and graceful degradation: the merged report is
//!   `partial: true` with a [`ShardOutcome`] and one
//!   `AlignError::ShardLost` naming each uncovered range.
//! * [`fault`] *(feature `fault-inject`)* — deterministic chaos:
//!   SIGKILL a chosen shard's child right after dispatch, so the
//!   retry/breaker/degradation ladder is testable end to end.
//!
//! Supervisor lifecycle events (spawn / exit / retry / breaker) ride
//! the same [`FlightRecorder`] ring the serve stack uses and are
//! auto-dumped on any dirty drain or circuit-breaker trip.
//!
//! [`SeqDatabase`]: aalign_bio::db::SeqDatabase
//! [`SearchReport`]: aalign_par::SearchReport
//! [`ShardOutcome`]: aalign_par::ShardOutcome
//! [`FlightRecorder`]: aalign_obs::FlightRecorder

#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod supervisor;
pub mod worker;

#[cfg(feature = "fault-inject")]
pub use fault::ShardFaultPlan;
pub use supervisor::{ShardOptions, ShardQuery, Supervisor};
pub use worker::WorkerCommand;
