//! The shard supervisor: partition, fan out, detect death, retry,
//! degrade, merge.
//!
//! ## Supervision tree
//!
//! One [`Supervisor`] owns N [`ShardSlot`]s; each slot owns at most
//! one live [`Worker`] child plus its health history (death
//! timestamps inside the breaker window, backoff state, respawn
//! schedule). Every query locks the slots in index order, dispatches
//! to all live shards (deadline decremented by elapsed supervisor
//! time), then collects in index order while the children compute
//! concurrently.
//!
//! ## Retry / degradation state machine, per shard per query
//!
//! ```text
//!          dispatch ──► answered ──────────────────────► ok
//!             │
//!             ├─ child died (EOF/reap) ─► respawn (backoff)
//!             │        │                        │
//!             │        │ breaker tripped        ├─ resend once
//!             │        ▼ or no budget           ▼ (same request id)
//!             │      failed ◄────────── died/timed out again
//!             │
//!             └─ no reply by deadline+grace ─► kill child,
//!                                              failed (timed_out)
//! ```
//!
//! A failed shard degrades the answer instead of failing it: the
//! merged report is `partial: true`, carries an
//! [`AlignError::ShardLost`] naming the exact uncovered `[start,
//! end)` range, and accounts the outcome in
//! [`SearchMetrics::shards`]. A shard that dies
//! [`breaker_deaths`](ShardOptions::breaker_deaths) times inside
//! [`breaker_window`](ShardOptions::breaker_window) is circuit-broken
//! (marked dead, flight ring dumped) and the search continues on the
//! survivors.
//!
//! ## Bit-exactness
//!
//! Children run the same engine with the same aligner configuration;
//! each shard's hits come back shard-local and are rebased by the
//! shard's range start, then ranked with [`aalign_par::rank_hits`] —
//! the engine's own (score desc, db_index asc) order — and truncated
//! to `top_n`. Merging per-shard top-k lists this way is exactly the
//! single-process top-k.
//!
//! [`SearchMetrics::shards`]: aalign_par::SearchMetrics
//! [`AlignError::ShardLost`]: aalign_core::AlignError

use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use aalign_bio::db::SeqDatabase;
use aalign_bio::fasta::write_fasta;
use aalign_bio::Sequence;
use aalign_core::retry::Backoff;
use aalign_core::AlignError;
use aalign_obs::wire::{obj, JsonValue};
use aalign_obs::{FlightEvent, FlightRecorder, StageKind};
use aalign_par::wire::report_from_wire;
use aalign_par::{rank_hits, SearchMetrics, SearchReport};

#[cfg(feature = "fault-inject")]
use crate::fault::ShardFaultPlan;
use crate::worker::{RecvError, Worker, WorkerCommand};

/// Supervisor policy knobs. Construct with [`ShardOptions::new`] and
/// adjust with the builder methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ShardOptions {
    /// Number of contiguous shards (clamped to the database size).
    pub shards: usize,
    /// Query budget when the caller supplies no deadline.
    pub default_deadline: Duration,
    /// Extra wait past a query's deadline for a child's own
    /// `partial: true` reply to cross the pipe before the child is
    /// declared wedged and killed.
    pub request_grace: Duration,
    /// Budget for a spawned child to pass its readiness `health`
    /// ping (the child loads its shard FASTA first).
    pub spawn_timeout: Duration,
    /// First respawn backoff delay.
    pub backoff_base: Duration,
    /// Backoff delay cap.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter stream.
    pub backoff_seed: u64,
    /// Deaths inside [`breaker_window`](Self::breaker_window) that
    /// trip a shard's circuit breaker.
    pub breaker_deaths: u32,
    /// Sliding window for [`breaker_deaths`](Self::breaker_deaths).
    pub breaker_window: Duration,
    /// Graceful-drain budget per child (shutdown RPC + SIGTERM, then
    /// SIGKILL when it expires).
    pub drain_grace: Duration,
    /// Liveness monitor period (`try_wait` reap + idle `health`
    /// ping + background respawn); `None` disables the monitor
    /// thread — deaths are then detected on the query path only.
    pub heartbeat: Option<Duration>,
    /// Deterministic chaos plan (kills a chosen shard's child right
    /// after dispatch).
    #[cfg(feature = "fault-inject")]
    pub fault: Option<ShardFaultPlan>,
}

impl ShardOptions {
    /// Defaults for `shards` shards: 30 s default deadline, 2 s
    /// grace, 30 s spawn budget, 50 ms → 2 s backoff, breaker at 3
    /// deaths / 60 s, 5 s drain grace, 1 s heartbeat.
    pub fn new(shards: usize) -> Self {
        ShardOptions {
            shards: shards.max(1),
            default_deadline: Duration::from_secs(30),
            request_grace: Duration::from_secs(2),
            spawn_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            backoff_seed: 0,
            breaker_deaths: 3,
            breaker_window: Duration::from_secs(60),
            drain_grace: Duration::from_secs(5),
            heartbeat: Some(Duration::from_secs(1)),
            #[cfg(feature = "fault-inject")]
            fault: None,
        }
    }

    /// Set the default per-query deadline.
    #[must_use]
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = d;
        self
    }

    /// Set the respawn backoff policy.
    #[must_use]
    pub fn backoff(mut self, base: Duration, cap: Duration, seed: u64) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self.backoff_seed = seed;
        self
    }

    /// Set the circuit-breaker policy.
    #[must_use]
    pub fn breaker(mut self, deaths: u32, window: Duration) -> Self {
        self.breaker_deaths = deaths.max(1);
        self.breaker_window = window;
        self
    }

    /// Set the liveness monitor period (`None` disables it).
    #[must_use]
    pub fn heartbeat(mut self, period: Option<Duration>) -> Self {
        self.heartbeat = period;
        self
    }

    /// Set the graceful-drain budget per child.
    #[must_use]
    pub fn drain_grace(mut self, d: Duration) -> Self {
        self.drain_grace = d;
        self
    }

    /// Install a deterministic chaos plan.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn fault(mut self, plan: ShardFaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }
}

/// One query, supervisor-level.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ShardQuery {
    /// Query residues (protein, one-letter code).
    pub query: String,
    /// Query label (rides to the children as `query_id`).
    pub query_id: String,
    /// Keep the best `top_n` hits (0 = every hit).
    pub top_n: usize,
    /// Wall-clock budget; `None` uses
    /// [`ShardOptions::default_deadline`].
    pub deadline: Option<Duration>,
}

impl ShardQuery {
    /// Query with defaults (every hit, default deadline).
    pub fn new(query: impl Into<String>) -> Self {
        ShardQuery {
            query: query.into(),
            query_id: "query".to_string(),
            top_n: 0,
            deadline: None,
        }
    }

    /// Set the hit budget.
    #[must_use]
    pub fn top_n(mut self, n: usize) -> Self {
        self.top_n = n;
        self
    }

    /// Set the wall-clock budget.
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the query label.
    #[must_use]
    pub fn query_id(mut self, id: impl Into<String>) -> Self {
        self.query_id = id.into();
        self
    }
}

/// Mutable per-shard state, behind the slot's mutex.
#[derive(Debug)]
struct SlotState {
    worker: Option<Worker>,
    /// Circuit-broken: no further spawns or dispatches.
    dead: bool,
    /// Death timestamps inside the breaker window.
    deaths: VecDeque<Instant>,
    /// Earliest instant the next (re)spawn may run (backoff).
    next_respawn_at: Option<Instant>,
    backoff: Backoff,
    /// Children spawned into this slot over its lifetime.
    spawned: u64,
    /// JSON-RPC id counter for this slot's connection(s).
    rpc_seq: u64,
}

/// One contiguous database shard.
#[derive(Debug)]
struct ShardSlot {
    index: usize,
    /// Global database range `[start, end)` this shard covers.
    start: usize,
    end: usize,
    db_path: PathBuf,
    state: Mutex<SlotState>,
}

#[derive(Debug, Default)]
struct SupervisorStats {
    queries: u64,
    respawns: u64,
}

/// The shard supervisor. See the [module docs](self) for the
/// supervision tree and state machine.
#[derive(Debug)]
pub struct Supervisor {
    cmd: WorkerCommand,
    opts: ShardOptions,
    /// Temp directory holding the per-shard FASTA files.
    dir: PathBuf,
    slots: Vec<ShardSlot>,
    recorder: Arc<FlightRecorder>,
    started: Instant,
    stats: Mutex<SupervisorStats>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
    monitor_stop: Arc<(Mutex<bool>, Condvar)>,
    shut: Mutex<bool>,
    total_subjects: usize,
    #[cfg(feature = "fault-inject")]
    fault: Mutex<Option<ShardFaultPlan>>,
}

/// Contiguous balanced partition of `len` subjects into `n` ranges
/// (`n` clamped to `len.max(1)`): range `i` is
/// `[i·len/n, (i+1)·len/n)`.
pub fn partition(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.clamp(1, len.max(1));
    (0..n).map(|i| (i * len / n, (i + 1) * len / n)).collect()
}

impl Supervisor {
    /// Partition `db`, write one FASTA per shard into a fresh temp
    /// directory, spawn one child per shard, and confirm each with a
    /// readiness `health` round trip. Fails fast if any child cannot
    /// start. Starts the liveness monitor unless
    /// [`ShardOptions::heartbeat`] is `None`.
    pub fn launch(
        db: &SeqDatabase,
        cmd: WorkerCommand,
        opts: ShardOptions,
    ) -> io::Result<Arc<Supervisor>> {
        let ranges = partition(db.len(), opts.shards);
        let dir = fresh_shard_dir()?;
        let mut slots = Vec::with_capacity(ranges.len());
        for (i, &(start, end)) in ranges.iter().enumerate() {
            let db_path = dir.join(format!("shard{i}.fa"));
            let file = std::fs::File::create(&db_path)?;
            write_fasta(io::BufWriter::new(file), &db.sequences()[start..end], 60)?;
            slots.push(ShardSlot {
                index: i,
                start,
                end,
                db_path,
                state: Mutex::new(SlotState {
                    worker: None,
                    dead: false,
                    deaths: VecDeque::new(),
                    next_respawn_at: None,
                    backoff: Backoff::seeded(
                        opts.backoff_base,
                        opts.backoff_cap,
                        opts.backoff_seed.wrapping_add(i as u64),
                    ),
                    spawned: 0,
                    rpc_seq: 0,
                }),
            });
        }
        #[cfg(feature = "fault-inject")]
        let fault = Mutex::new(opts.fault.clone());
        let sup = Arc::new(Supervisor {
            cmd,
            opts,
            dir,
            slots,
            recorder: Arc::new(FlightRecorder::new()),
            started: Instant::now(),
            stats: Mutex::new(SupervisorStats::default()),
            monitor: Mutex::new(None),
            monitor_stop: Arc::new((Mutex::new(false), Condvar::new())),
            shut: Mutex::new(false),
            total_subjects: db.len(),
            #[cfg(feature = "fault-inject")]
            fault,
        });
        for slot in &sup.slots {
            let mut st = slot.state.lock().expect("slot state poisoned");
            if !sup.spawn_into(slot, &mut st, Instant::now() + sup.opts.spawn_timeout) {
                drop(st);
                let _ = std::fs::remove_dir_all(&sup.dir);
                return Err(io::Error::other(format!(
                    "shard {} child failed readiness",
                    slot.index
                )));
            }
        }
        if let Some(period) = sup.opts.heartbeat {
            let weak = Arc::downgrade(&sup);
            let stop = Arc::clone(&sup.monitor_stop);
            let handle = std::thread::Builder::new()
                .name("aalign-shard-monitor".to_string())
                .spawn(move || monitor_loop(&weak, &stop, period))?;
            *sup.monitor.lock().expect("monitor handle poisoned") = Some(handle);
        }
        Ok(sup)
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Global `[start, end)` database range per shard.
    pub fn ranges(&self) -> Vec<(usize, usize)> {
        self.slots.iter().map(|s| (s.start, s.end)).collect()
    }

    /// Subjects across all shards.
    pub fn subjects(&self) -> usize {
        self.total_subjects
    }

    /// Shards with a live child right now.
    pub fn shards_live(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                let st = s.state.lock().expect("slot state poisoned");
                !st.dead && st.worker.is_some()
            })
            .count()
    }

    /// Circuit-broken shards.
    pub fn shards_dead(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state.lock().expect("slot state poisoned").dead)
            .count()
    }

    /// Children respawned over the supervisor's lifetime (excludes
    /// the initial N spawns).
    pub fn respawns(&self) -> u64 {
        self.stats.lock().expect("stats poisoned").respawns
    }

    /// Queries served.
    pub fn queries_served(&self) -> u64 {
        self.stats.lock().expect("stats poisoned").queries
    }

    /// Current child pid for a shard (tests / external chaos).
    pub fn shard_pid(&self, shard: usize) -> Option<u32> {
        let st = self.slots.get(shard)?.state.lock().expect("slot state");
        st.worker.as_ref().map(Worker::pid)
    }

    /// The supervisor's flight-recorder ring (shard spawn / exit /
    /// retry / breaker events) — servable alongside a dispatcher's
    /// own ring on `/debug/flight`.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Dump the flight ring to stderr, labelled with why — same
    /// format as the serve dispatcher's dump. Called automatically on
    /// circuit-breaker trips and dirty drains.
    pub fn dump_flight(&self, why: &str) {
        let dump = self.recorder.dump_jsonl();
        eprintln!(
            "aalign-shard: flight recorder dump ({why}; {} event(s) retained, {} recorded):",
            dump.lines().count(),
            self.recorder.recorded(),
        );
        eprint!("{dump}");
    }

    fn event(&self, request: u64, stage: StageKind, dur: Duration, shard: usize) {
        self.recorder.record(FlightEvent {
            at_us: u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX),
            request,
            stage,
            dur_us: u64::try_from(dur.as_micros()).unwrap_or(u64::MAX),
            ref_request: shard as u64,
        });
    }

    /// Fan one query out to every live shard and merge. Degrades
    /// rather than fails: shard loss yields `partial: true` plus
    /// [`AlignError::ShardLost`] entries; only whole-query problems
    /// (empty/invalid query) are `Err`.
    pub fn search(&self, q: &ShardQuery) -> Result<SearchReport, AlignError> {
        if q.query.is_empty() {
            return Err(AlignError::EmptyQuery);
        }
        // Validate locally so a deterministic bad query never counts
        // against shard health (every child would refuse it anyway).
        Sequence::protein(q.query_id.as_str(), q.query.as_bytes()).map_err(|_| {
            AlignError::AlphabetMismatch {
                id: q.query_id.clone(),
            }
        })?;
        let qid = {
            let mut stats = self.stats.lock().expect("stats poisoned");
            stats.queries += 1;
            stats.queries
        };
        let started = Instant::now();
        let deadline_at = started + q.deadline.unwrap_or(self.opts.default_deadline);
        let hard_deadline = deadline_at + self.opts.request_grace;

        // Lock every slot in index order for the whole query: one
        // child serves one request at a time, so responses need no
        // cross-query routing.
        let mut guards: Vec<_> = self
            .slots
            .iter()
            .map(|s| s.state.lock().expect("slot state poisoned"))
            .collect();

        // Phase 1: dispatch to every live shard; children compute
        // concurrently while we collect in order below.
        let mut pending: Vec<Option<u64>> = Vec::with_capacity(self.slots.len());
        for (slot, st) in self.slots.iter().zip(guards.iter_mut()) {
            pending.push(self.dispatch(slot, st, q, qid, deadline_at));
        }

        // Phase 2: collect, retrying each lost shard once.
        let mut per_shard = Vec::with_capacity(self.slots.len());
        for ((slot, st), rpc_id) in self.slots.iter().zip(guards.iter_mut()).zip(pending) {
            per_shard.push(self.collect(slot, st, q, qid, rpc_id, deadline_at, hard_deadline));
        }
        drop(guards);

        let merge_started = Instant::now();
        Ok(merge_reports(per_shard, q.top_n, started, merge_started))
    }

    /// Dispatch the query to one shard. Returns the in-flight RPC id,
    /// or `None` when the shard is unavailable (dead, could not
    /// respawn inside the budget, or the budget is already spent).
    fn dispatch(
        &self,
        slot: &ShardSlot,
        st: &mut SlotState,
        q: &ShardQuery,
        qid: u64,
        deadline_at: Instant,
    ) -> Option<u64> {
        if !self.ensure_worker(slot, st, deadline_at) {
            return None;
        }
        let remaining = deadline_at.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return None;
        }
        st.rpc_seq += 1;
        let rpc_id = st.rpc_seq;
        let line = Worker::request_line(rpc_id, "search", search_params(q, qid, remaining));
        let sent = st
            .worker
            .as_mut()
            .expect("ensure_worker guarantees a worker")
            .send_line(&line)
            .is_ok();
        if !sent {
            // Write failure is a death; the collect phase retries.
            self.record_death(slot, st, qid);
            return Some(rpc_id);
        }
        self.maybe_inject_kill(slot, st);
        Some(rpc_id)
    }

    /// Collect one shard's answer, taking the retry-once path on
    /// child death. `rpc_id == None` means dispatch already failed.
    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        slot: &ShardSlot,
        st: &mut SlotState,
        q: &ShardQuery,
        qid: u64,
        rpc_id: Option<u64>,
        deadline_at: Instant,
        hard_deadline: Instant,
    ) -> PerShard {
        let mut shard = PerShard {
            index: slot.index,
            start: slot.start,
            end: slot.end,
            answer: None,
            timed_out: false,
            retried: false,
        };
        let Some(mut rpc_id) = rpc_id else {
            return shard; // failed (unavailable / no budget)
        };
        let mut attempt = 0;
        loop {
            let outcome = match st.worker.as_mut() {
                Some(w) => w.recv_matching(rpc_id, hard_deadline),
                // Dispatch-time death: fall straight to the retry arm.
                None => Err(RecvError::Closed),
            };
            match outcome {
                Ok(doc) => {
                    if let Some(result) = doc.get("result") {
                        if let Ok(report) = report_from_wire(result) {
                            shard.answer = Some(report);
                            return shard;
                        }
                    }
                    // A JSON-RPC error (or undecodable result) is a
                    // deterministic refusal — no point retrying the
                    // same request on a fresh child.
                    return shard;
                }
                Err(RecvError::TimedOut) => {
                    // No reply even after the grace period: the child
                    // is wedged (its own deadline handling would have
                    // produced a partial reply by now). Kill it; no
                    // budget remains for a retry.
                    self.record_death(slot, st, qid);
                    shard.timed_out = true;
                    return shard;
                }
                Err(_) => {
                    // Child died. Retry once on a respawned child,
                    // idempotent by request id.
                    if st.worker.is_some() {
                        self.record_death(slot, st, qid);
                    }
                    if attempt >= 1 || !self.ensure_worker(slot, st, deadline_at) {
                        return shard;
                    }
                    attempt += 1;
                    shard.retried = true;
                    let remaining = deadline_at.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        shard.timed_out = true;
                        return shard;
                    }
                    st.rpc_seq += 1;
                    rpc_id = st.rpc_seq;
                    self.event(qid, StageKind::ShardRetry, remaining, slot.index);
                    let line =
                        Worker::request_line(rpc_id, "search", search_params(q, qid, remaining));
                    if st
                        .worker
                        .as_mut()
                        .expect("ensure_worker guarantees a worker")
                        .send_line(&line)
                        .is_err()
                    {
                        self.record_death(slot, st, qid);
                        return shard;
                    }
                    self.maybe_inject_kill(slot, st);
                }
            }
        }
    }

    /// Make sure the slot has a live child: respects the breaker,
    /// waits out the backoff window (bounded by the query budget),
    /// then spawns and readiness-checks.
    fn ensure_worker(&self, slot: &ShardSlot, st: &mut SlotState, deadline_at: Instant) -> bool {
        if st.dead {
            return false;
        }
        if st.worker.is_some() {
            return true;
        }
        if let Some(at) = st.next_respawn_at {
            if at > deadline_at {
                return false; // cannot afford the backoff wait
            }
            let now = Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
        }
        if self.spawn_into(slot, st, deadline_at) {
            true
        } else {
            self.record_death(slot, st, 0);
            false
        }
    }

    /// Spawn a child into the slot and confirm readiness with a
    /// `health` round trip (bounded by both the spawn budget and
    /// `deadline_cap`).
    fn spawn_into(&self, slot: &ShardSlot, st: &mut SlotState, deadline_cap: Instant) -> bool {
        let begun = Instant::now();
        let Ok(mut w) = Worker::spawn(&self.cmd, &slot.db_path) else {
            return false;
        };
        st.rpc_seq += 1;
        let ping_deadline = (begun + self.opts.spawn_timeout).min(deadline_cap);
        if w.call(st.rpc_seq, "health", obj(vec![]), ping_deadline)
            .is_err()
        {
            return false; // dropping `w` kills and reaps the child
        }
        st.spawned += 1;
        if st.spawned > 1 {
            self.stats.lock().expect("stats poisoned").respawns += 1;
        }
        st.worker = Some(w);
        st.next_respawn_at = None;
        self.event(0, StageKind::ShardSpawn, begun.elapsed(), slot.index);
        true
    }

    /// Account one child death: reap it, schedule the backoff-delayed
    /// respawn, and trip the breaker when the window fills. Trips
    /// auto-dump the flight ring.
    fn record_death(&self, slot: &ShardSlot, st: &mut SlotState, qid: u64) {
        if let Some(mut w) = st.worker.take() {
            w.kill_and_reap();
        }
        let now = Instant::now();
        st.deaths.push_back(now);
        while let Some(&front) = st.deaths.front() {
            if now.duration_since(front) > self.opts.breaker_window {
                st.deaths.pop_front();
            } else {
                break;
            }
        }
        let delay = st.backoff.next().unwrap_or_default();
        st.next_respawn_at = Some(now + delay);
        self.event(qid, StageKind::ShardExit, delay, slot.index);
        if !st.dead && st.deaths.len() >= self.opts.breaker_deaths as usize {
            st.dead = true;
            self.event(qid, StageKind::ShardBreaker, Duration::ZERO, slot.index);
            self.dump_flight(&format!(
                "circuit breaker tripped: shard {} died {} time(s) within {:?}",
                slot.index,
                st.deaths.len(),
                self.opts.breaker_window
            ));
        }
    }

    #[cfg(feature = "fault-inject")]
    fn maybe_inject_kill(&self, slot: &ShardSlot, st: &mut SlotState) {
        let mut plan = self.fault.lock().expect("fault plan poisoned");
        if let Some(p) = plan.as_mut() {
            if p.should_kill(slot.index) {
                if let Some(w) = st.worker.as_mut() {
                    w.sigkill();
                }
            }
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    fn maybe_inject_kill(&self, _slot: &ShardSlot, _st: &mut SlotState) {}

    /// One liveness pass: reap dead children, respawn when the
    /// backoff window has passed, and `health`-ping idle children (a
    /// busy child simply doesn't answer in time, which is not fatal —
    /// only a closed pipe is).
    fn monitor_tick(&self, ping_timeout: Duration) {
        for slot in &self.slots {
            // A held lock means a query is using this shard; skip.
            let Ok(mut st) = slot.state.try_lock() else {
                continue;
            };
            if st.dead {
                continue;
            }
            match st.worker.take() {
                Some(mut w) => {
                    if !w.is_alive() {
                        st.worker = Some(w);
                        self.record_death(slot, &mut st, 0);
                        continue;
                    }
                    st.rpc_seq += 1;
                    let rpc_id = st.rpc_seq;
                    let pinged =
                        w.call(rpc_id, "health", obj(vec![]), Instant::now() + ping_timeout);
                    st.worker = Some(w);
                    match pinged {
                        Ok(_) => {
                            if st.deaths.is_empty() {
                                st.backoff.reset();
                            }
                        }
                        Err(e) if e.is_fatal() => self.record_death(slot, &mut st, 0),
                        Err(_) => {} // slow, not dead
                    }
                }
                None => {
                    if st.next_respawn_at.is_none_or(|at| Instant::now() >= at)
                        && !self.spawn_into(slot, &mut st, Instant::now() + self.opts.spawn_timeout)
                    {
                        self.record_death(slot, &mut st, 0);
                    }
                }
            }
        }
    }

    /// Graceful drain: stop the monitor, send each child a `shutdown`
    /// RPC plus SIGTERM, reap with [`ShardOptions::drain_grace`],
    /// SIGKILL stragglers, remove the shard FASTA directory. Returns
    /// true when every child exited inside the grace period; a dirty
    /// drain auto-dumps the flight ring. Idempotent.
    pub fn shutdown(&self) -> bool {
        {
            let mut shut = self.shut.lock().expect("shutdown flag poisoned");
            if *shut {
                return true;
            }
            *shut = true;
        }
        {
            let (lock, cv) = &*self.monitor_stop;
            *lock.lock().expect("monitor stop poisoned") = true;
            cv.notify_all();
        }
        if let Some(h) = self.monitor.lock().expect("monitor handle poisoned").take() {
            let _ = h.join();
        }
        let mut clean = true;
        for slot in &self.slots {
            let mut st = slot.state.lock().expect("slot state poisoned");
            if let Some(mut w) = st.worker.take() {
                st.rpc_seq += 1;
                // Best effort: the stdio daemon replies, flushes, and
                // exits on shutdown; SIGTERM covers a child wedged
                // mid-request.
                let _ = w.send_line(&Worker::request_line(st.rpc_seq, "shutdown", obj(vec![])));
                w.sigterm();
                if !w.wait_with_grace(self.opts.drain_grace) {
                    w.kill_and_reap();
                    clean = false;
                }
            }
        }
        if !clean {
            self.dump_flight("dirty drain: child outlived the grace period");
        }
        let _ = std::fs::remove_dir_all(&self.dir);
        clean
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn monitor_loop(sup: &Weak<Supervisor>, stop: &Arc<(Mutex<bool>, Condvar)>, period: Duration) {
    let ping_timeout = period.min(Duration::from_secs(1));
    loop {
        {
            let (lock, cv) = &**stop;
            let guard = lock.lock().expect("monitor stop poisoned");
            let (guard, _) = cv
                .wait_timeout_while(guard, period, |stopped| !*stopped)
                .expect("monitor stop poisoned");
            if *guard {
                return;
            }
        }
        let Some(sup) = sup.upgrade() else {
            return;
        };
        sup.monitor_tick(ping_timeout);
    }
}

/// The per-shard `search` params: the same [`SearchRequest`] document
/// the HTTP front end takes, with the supervisor's remaining budget
/// as the deadline and `q<qid>` as the idempotent request id.
///
/// [`SearchRequest`]: ../serve/wire/struct.SearchRequest.html
fn search_params(q: &ShardQuery, qid: u64, remaining: Duration) -> JsonValue {
    let request_id = format!("q{qid}");
    obj(vec![
        ("query", q.query.as_str().into()),
        ("query_id", q.query_id.as_str().into()),
        ("id", request_id.as_str().into()),
        ("top_n", q.top_n.into()),
        (
            "deadline_ms",
            u64::try_from(remaining.as_millis())
                .unwrap_or(u64::MAX)
                .into(),
        ),
        ("no_batch", true.into()),
    ])
}

/// One shard's outcome for one query, pre-merge.
#[derive(Debug)]
pub(crate) struct PerShard {
    pub index: usize,
    pub start: usize,
    pub end: usize,
    /// `Some` = answered (possibly `partial` on its own terms).
    pub answer: Option<SearchReport>,
    pub timed_out: bool,
    pub retried: bool,
}

/// Merge per-shard reports into one: rebase `db_index` by each
/// shard's range start, rank with the engine's own order, truncate to
/// `top_n`, sum/merge the metrics, and stamp the [`ShardOutcome`] —
/// every failed shard contributes `partial: true` plus a
/// [`ShardLost`] error naming its uncovered range.
///
/// [`ShardOutcome`]: aalign_par::ShardOutcome
/// [`ShardLost`]: aalign_core::AlignError::ShardLost
pub(crate) fn merge_reports(
    mut per_shard: Vec<PerShard>,
    top_n: usize,
    started: Instant,
    merge_started: Instant,
) -> SearchReport {
    let mut hits = Vec::new();
    let mut errors = Vec::new();
    let mut partial = false;
    let mut metrics = SearchMetrics::default();
    let mut threads_used = 0;
    let mut subjects = 0;
    let mut total_residues = 0;
    let mut worker_id = 0usize;
    let mut certified: Option<u32> = Some(u32::MAX);

    for shard in &mut per_shard {
        metrics.shards.retried += u64::from(shard.retried);
        let Some(report) = shard.answer.take() else {
            metrics.shards.failed += 1;
            metrics.shards.timed_out += u64::from(shard.timed_out);
            partial = true;
            errors.push(AlignError::ShardLost {
                shard: shard.index,
                start: shard.start,
                end: shard.end,
            });
            certified = None;
            continue;
        };
        metrics.shards.ok += 1;
        partial |= report.partial;
        threads_used += report.threads_used;
        subjects += report.subjects;
        total_residues += report.total_residues;
        for mut hit in report.hits {
            hit.db_index += shard.start;
            hits.push(hit);
        }
        for e in report.errors {
            errors.push(match e {
                AlignError::WorkerPanicked { db_index, payload } => AlignError::WorkerPanicked {
                    db_index: db_index + shard.start,
                    payload,
                },
                other => other,
            });
        }
        let m = report.metrics;
        metrics.cells += m.cells;
        metrics.kernel_stats.merge(&m.kernel_stats);
        metrics.width_retries += m.width_retries;
        metrics.rescued += m.rescued;
        metrics.rescue_widths.merge(&m.rescue_widths);
        metrics.coalesced += m.coalesced;
        metrics.workers_respawned += m.workers_respawned;
        metrics.peak_hits_buffered += m.peak_hits_buffered;
        metrics.queue_wait.merge(&m.queue_wait);
        metrics.batch_wait.merge(&m.batch_wait);
        metrics.request_e2e.merge(&m.request_e2e);
        metrics.latency.merge(&m.latency);
        metrics.worker_load.merge(&m.worker_load);
        // Shards run concurrently: stage walls aggregate as maxima.
        metrics.prepare = metrics.prepare.max(m.prepare);
        metrics.sweep = metrics.sweep.max(m.sweep);
        certified = match (certified, m.certified_width) {
            (Some(c), w) if w > 0 => Some(c.min(w)),
            _ => None,
        };
        for mut w in m.per_worker {
            w.worker_id = worker_id;
            worker_id += 1;
            metrics.per_worker.push(w);
        }
    }

    rank_hits(&mut hits);
    if top_n > 0 {
        hits.truncate(top_n);
    }
    metrics.certified_width = certified.filter(|&c| c != u32::MAX).unwrap_or(0);
    metrics.merge = merge_started.elapsed();
    metrics.total = started.elapsed();
    metrics.gcups = SearchMetrics::derive_gcups(metrics.cells, metrics.sweep);
    metrics.peak_hits_buffered = metrics.peak_hits_buffered.max(hits.len());

    SearchReport {
        hits,
        threads_used,
        subjects,
        total_residues,
        metrics,
        trace_events: Vec::new(),
        partial,
        errors,
    }
}

/// A unique per-launch temp directory for the shard FASTA files.
fn fresh_shard_dir() -> io::Result<PathBuf> {
    static SEQ: Mutex<u64> = Mutex::new(0);
    let seq = {
        let mut s = SEQ.lock().expect("shard dir counter poisoned");
        *s += 1;
        *s
    };
    let dir = std::env::temp_dir().join(format!("aalign-shard-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_par::Hit;

    #[test]
    fn partition_is_contiguous_balanced_and_clamped() {
        for (len, n) in [(10, 3), (7, 4), (100, 1), (5, 8), (1, 1), (0, 4)] {
            let ranges = partition(len, n);
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous: {ranges:?}");
            }
            let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
            assert!(ranges.len() <= len.max(1), "clamped: {ranges:?}");
        }
    }

    fn empty_report() -> SearchReport {
        SearchReport {
            hits: Vec::new(),
            threads_used: 0,
            subjects: 0,
            total_residues: 0,
            metrics: SearchMetrics::default(),
            trace_events: Vec::new(),
            partial: false,
            errors: Vec::new(),
        }
    }

    fn shard_with_hits(index: usize, start: usize, end: usize, hits: Vec<Hit>) -> PerShard {
        let mut report = empty_report();
        report.hits = hits;
        report.subjects = end - start;
        report.threads_used = 1;
        PerShard {
            index,
            start,
            end,
            answer: Some(report),
            timed_out: false,
            retried: false,
        }
    }

    #[test]
    fn merge_rebases_ranks_and_breaks_ties_on_global_index() {
        let now = Instant::now();
        // Shard-local indices; scores chosen so a cross-shard tie
        // must break on the *rebased* global index.
        let a = shard_with_hits(
            0,
            0,
            3,
            vec![
                Hit {
                    db_index: 2,
                    len: 10,
                    score: 50,
                },
                Hit {
                    db_index: 0,
                    len: 10,
                    score: 80,
                },
            ],
        );
        let b = shard_with_hits(
            1,
            3,
            6,
            vec![
                Hit {
                    db_index: 0,
                    len: 10,
                    score: 80,
                },
                Hit {
                    db_index: 1,
                    len: 10,
                    score: 20,
                },
            ],
        );
        let merged = merge_reports(vec![a, b], 3, now, now);
        assert!(!merged.partial);
        assert_eq!(merged.metrics.shards.ok, 2);
        let got: Vec<(usize, i32)> = merged.hits.iter().map(|h| (h.db_index, h.score)).collect();
        // 80@0 beats 80@3 (tie → lower global index), then 50@2.
        assert_eq!(got, vec![(0, 80), (3, 80), (2, 50)]);
    }

    #[test]
    fn merge_degrades_failed_shards_with_exact_uncovered_range() {
        let now = Instant::now();
        let ok = shard_with_hits(
            0,
            0,
            5,
            vec![Hit {
                db_index: 1,
                len: 9,
                score: 33,
            }],
        );
        let lost = PerShard {
            index: 1,
            start: 5,
            end: 9,
            answer: None,
            timed_out: true,
            retried: true,
        };
        let merged = merge_reports(vec![ok, lost], 0, now, now);
        assert!(merged.partial);
        assert_eq!(merged.metrics.shards.ok, 1);
        assert_eq!(merged.metrics.shards.failed, 1);
        assert_eq!(merged.metrics.shards.timed_out, 1);
        assert_eq!(merged.metrics.shards.retried, 1);
        assert_eq!(
            merged.errors,
            vec![AlignError::ShardLost {
                shard: 1,
                start: 5,
                end: 9,
            }]
        );
        // Survivor hits intact and rebased.
        assert_eq!(
            merged.hits,
            vec![Hit {
                db_index: 1,
                len: 9,
                score: 33
            }]
        );
        // A failed shard voids the merged certificate.
        assert_eq!(merged.metrics.certified_width, 0);
    }

    #[test]
    fn merge_rebases_worker_panic_indices() {
        let now = Instant::now();
        let mut report = empty_report();
        report.errors = vec![AlignError::WorkerPanicked {
            db_index: 2,
            payload: "boom".into(),
        }];
        let shard = PerShard {
            index: 1,
            start: 10,
            end: 20,
            answer: Some(report),
            timed_out: false,
            retried: false,
        };
        let merged = merge_reports(vec![shard], 0, now, now);
        assert_eq!(
            merged.errors,
            vec![AlignError::WorkerPanicked {
                db_index: 12,
                payload: "boom".into(),
            }]
        );
    }

    #[test]
    fn search_params_carry_the_idempotent_request_id() {
        let q = ShardQuery::new("MKVLA").top_n(5).query_id("q-test");
        let params = search_params(&q, 42, Duration::from_millis(750));
        let doc = params.render();
        for needle in [
            "\"query\":\"MKVLA\"",
            "\"query_id\":\"q-test\"",
            "\"id\":\"q42\"",
            "\"top_n\":5",
            "\"deadline_ms\":750",
            "\"no_batch\":true",
        ] {
            assert!(doc.contains(needle), "{needle} missing from {doc}");
        }
    }
}
