//! Deterministic chaos for the shard supervisor (feature
//! `fault-inject`).
//!
//! A [`ShardFaultPlan`] names one shard and SIGKILLs its child right
//! after a query is dispatched to it — after the request line is on
//! the wire, before the reply — which is the worst moment to die:
//! the supervisor must notice the EOF, respawn, and resend. Plans are
//! scripted, not random, so every chaos test replays exactly.
//!
//! Grammar (mirrors the engine's `--fault-plan` spirit):
//!
//! ```text
//! kill@SHARD        SIGKILL shard SHARD's child on every dispatch
//! kill@SHARD:N      … only the first N dispatches
//! ```

use std::fmt;
use std::str::FromStr;

/// A scripted kill schedule against one shard. See the [module
/// docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFaultPlan {
    /// Shard whose child gets killed.
    pub shard: usize,
    /// Kills remaining; `None` = unlimited (every dispatch).
    pub remaining: Option<u64>,
}

impl ShardFaultPlan {
    /// Plan that kills `shard`'s child on its first `n` dispatches.
    pub fn kill_first(shard: usize, n: u64) -> Self {
        ShardFaultPlan {
            shard,
            remaining: Some(n),
        }
    }

    /// True when the child dispatched to `shard` should be killed
    /// now; decrements the budget.
    pub fn should_kill(&mut self, shard: usize) -> bool {
        if shard != self.shard {
            return false;
        }
        match &mut self.remaining {
            None => true,
            Some(0) => false,
            Some(n) => {
                *n -= 1;
                true
            }
        }
    }
}

impl FromStr for ShardFaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("kill@")
            .ok_or_else(|| format!("bad shard fault plan {s:?}: expected kill@SHARD[:N]"))?;
        let (shard, remaining) = match rest.split_once(':') {
            Some((shard, n)) => (
                shard,
                Some(n.parse::<u64>().map_err(|_| {
                    format!("bad shard fault plan {s:?}: kill count {n:?} is not a number")
                })?),
            ),
            None => (rest, None),
        };
        let shard = shard
            .parse::<usize>()
            .map_err(|_| format!("bad shard fault plan {s:?}: shard {shard:?} is not a number"))?;
        Ok(ShardFaultPlan { shard, remaining })
    }
}

impl fmt::Display for ShardFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.remaining {
            Some(n) => write!(f, "kill@{}:{n}", self.shard),
            None => write!(f, "kill@{}", self.shard),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_forms_and_round_trips() {
        let every: ShardFaultPlan = "kill@2".parse().unwrap();
        assert_eq!(
            every,
            ShardFaultPlan {
                shard: 2,
                remaining: None
            }
        );
        assert_eq!(every.to_string(), "kill@2");

        let bounded: ShardFaultPlan = "kill@0:3".parse().unwrap();
        assert_eq!(bounded, ShardFaultPlan::kill_first(0, 3));
        assert_eq!(bounded.to_string(), "kill@0:3");

        for bad in [
            "", "kill", "kill@", "kill@x", "kill@1:", "kill@1:x", "stall@1",
        ] {
            assert!(bad.parse::<ShardFaultPlan>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn bounded_plan_exhausts_and_ignores_other_shards() {
        let mut plan = ShardFaultPlan::kill_first(1, 2);
        assert!(!plan.should_kill(0));
        assert!(plan.should_kill(1));
        assert!(plan.should_kill(1));
        assert!(!plan.should_kill(1), "budget exhausted");
        assert!(!plan.should_kill(0));
    }

    #[test]
    fn unbounded_plan_never_exhausts() {
        let mut plan: ShardFaultPlan = "kill@0".parse().unwrap();
        for _ in 0..10 {
            assert!(plan.should_kill(0));
        }
    }
}
