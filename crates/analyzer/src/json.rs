//! Minimal JSON emission for the analyzer CLI's `--json` mode.
//!
//! The workspace deliberately carries no serialization dependency, so
//! this is a small hand-rolled writer: string escaping per RFC 8259
//! plus a builder for objects and arrays. The schema every subcommand
//! emits is stable:
//!
//! ```json
//! {
//!   "pass": "<check|range|audit|concurrency|conformance>",
//!   "ok": true,
//!   ...pass-specific fields...
//! }
//! ```
//!
//! Pass-specific payloads only ever *add* fields; existing field
//! names and types are a compatibility contract for the CI jobs that
//! parse them.

use std::fmt::Write as _;

/// Escape a string per RFC 8259 and wrap it in quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An object under construction. Values passed to [`Obj::raw`] must
/// already be valid JSON (numbers, booleans, nested objects/arrays).
#[derive(Debug, Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a string-valued field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("{}:{}", string(key), string(value)));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("{}:{}", string(key), value));
        self
    }

    /// Add an integer field.
    pub fn num(mut self, key: &str, value: i64) -> Self {
        self.fields.push(format!("{}:{}", string(key), value));
        self
    }

    /// Add a field whose value is pre-rendered JSON.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("{}:{}", string(key), value));
        self
    }

    /// Render the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Render a JSON array from pre-rendered element strings.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(","))
}

/// Render a JSON array of (escaped) strings.
pub fn string_array<'a, I: IntoIterator<Item = &'a str>>(items: I) -> String {
    array(items.into_iter().map(string))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("γ ≤ P"), "\"γ ≤ P\"");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let doc = Obj::new()
            .str("pass", "audit")
            .bool("ok", true)
            .num("count", 3)
            .raw("items", &string_array(["a", "b"]))
            .build();
        assert_eq!(
            doc,
            r#"{"pass":"audit","ok":true,"count":3,"items":["a","b"]}"#
        );
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(Obj::new().build(), "{}");
    }
}
