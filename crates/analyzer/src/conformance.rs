//! Kernel conformance prover (pass 5).
//!
//! The paper's central claim (Sec. IV) is an *equivalence*: the
//! Eq. (3–6) dynamic program — and the striped vector kernels rewritten
//! from it — computes exactly the Eq. (2) definition
//!
//! ```text
//! T[i][j] = max(0?, D[i][j],
//!               max_{1≤l≤j} T[i][j−l] + θ + l·β,     (column gaps)
//!               max_{1≤l≤i} T[i−l][j] + θ + l·β)     (row gaps)
//! ```
//!
//! This pass *proves* that claim for a parsed recurrence, per kernel,
//! as a set of machine-checked **proof obligations**:
//!
//! * **Symbolic obligations** are discharged by executing the
//!   recurrence AST over a max-plus term algebra: a symbolic value is
//!   a set of terms `table[i+di][j+dj] + a·GAP_OPEN + b·GAP_EXT +
//!   c·γ`, `max` is set union, and adding a constant distributes over
//!   the max. Unrolling the U/L helper recurrences `K` steps must
//!   reproduce exactly the Eq. (2) gap family
//!   `T + GAP_OPEN + (l−1)·GAP_EXT` (the paper's `GAP_OPEN` already
//!   includes one extension), with a uniform `+GAP_EXT` induction
//!   step — which is precisely the Eq. (2)→Eq. (3–6) rewrite being
//!   score-preserving.
//! * **Conditional obligations** are derived lemmas whose premises
//!   are themselves either proved obligations or checked library
//!   invariants: the striped permutation argument (a bijective
//!   reindexing plus `NEG_INF` padding preserves every max), and the
//!   lazy-F correction bound — the loop converges in at most `P`
//!   (= lane count) sweeps because each sweep's `shift_insert_low`
//!   inserts the `NEG_INF` sentinel at lane 0 and values only move
//!   upward, so after `P` sweeps every lane is sentinel-derived and
//!   the influence test `any_gt(v_f, v_t + θ)` must fail, *provided*
//!   the sentinel sits below every reachable score — which
//!   [`ScoreBounds::fits`] guarantees (`NEG_INF = −cap−1 <
//!   t_min − headroom` and `headroom > |θ|`).
//! * **Harness obligations** are premises that are empirical by
//!   nature (saturating arithmetic is exact below the saturation
//!   ceiling; the rescue ladder's wider retry is bit-exact) and are
//!   discharged by the bounded-exhaustive differential harness
//!   (`aalign-core::conformance`), which this pass runs.
//!
//! A recurrence that *parses and classifies* but cannot be justified —
//! e.g. a helper rule whose unrolled family reads the wrong row — gets
//! a **failed** obligation with a caret diagnostic pointing at the
//! offending statement, not a panic. The full obligation inventory and
//! the harness's variant coverage are pinned in
//! `conformance_baseline.txt` exactly like the atomics inventory.
//!
//! [`ScoreBounds::fits`]: aalign_core::ScoreBounds::fits

use std::collections::BTreeMap;
use std::fmt::Write as _;

use aalign_codegen::ast::{BinOp, Expr, ExprKind, Span, Stmt, StmtKind};
use aalign_codegen::emit::GapBindings;
use aalign_codegen::{analyze, parse_program, spec_to_config, KernelSpec};
use aalign_core::conformance::{run_harness, ConformanceReport, HarnessOptions};
use aalign_core::ScoreBounds;

/// Unroll depth for the Eq. (2) family check. Four steps pins the
/// base case, two induction steps, and the residual — enough to
/// witness the uniform `+GAP_EXT` step that carries the induction to
/// arbitrary gap length.
pub const UNROLL_DEPTH: usize = 4;

/// An affine kernel that parses, classifies (`sw-aff`) and passes the
/// dataflow wavefront check, but whose column-gap recurrence opens
/// gaps from `T[i-1][j]` — the *previous row* — instead of
/// `T[i][j-1]`. Its unrolled family is `T[i-1][j-l] + …`, which is
/// not the Eq. (2) column family, so the `eq2-col-unroll` obligation
/// must fail (with a caret at the offending rule), demonstrating the
/// prover rejects recurrences mere classification accepts.
pub const UNJUSTIFIABLE_FIXTURE: &str = r#"
for (i = 0; i < n + 1; i = i + 1) { T[0][i] = 0; U[0][i] = 0; L[0][i] = 0; }
for (j = 0; j < m + 1; j = j + 1) { T[j][0] = 0; U[j][0] = 0; L[j][0] = 0; }
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        L[i][j] = max(L[i-1][j] + GAP_EXT, T[i-1][j] + GAP_OPEN);
        U[i][j] = max(U[i][j-1] + GAP_EXT, T[i-1][j] + GAP_OPEN);
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(0, L[i][j], U[i][j], D[i][j]);
    }
}
"#;

// ---------------------------------------------------------------------------
// The max-plus symbolic domain.
// ---------------------------------------------------------------------------

/// What a symbolic term is anchored to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Base {
    /// The literal `0` operand (local kernels).
    Zero,
    /// A table cell at a fixed offset from the current `(i, j)`.
    Cell { table: String, di: i64, dj: i64 },
}

/// One max operand: a base plus an affine constant over the kernel's
/// symbolic gap constants and the substitution score γ.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Term {
    base: Base,
    /// Multiples of γ(S, Q) (the matrix score at the cell's diagonal).
    gamma: i64,
    /// Multiples of the source's `GAP_OPEN` constant (θ+β).
    open: i64,
    /// Multiples of the source's `GAP_EXT` constant (β).
    ext: i64,
}

impl Term {
    fn cell(table: &str, di: i64, dj: i64) -> Self {
        Term {
            base: Base::Cell {
                table: table.to_string(),
                di,
                dj,
            },
            gamma: 0,
            open: 0,
            ext: 0,
        }
    }

    fn describe(&self) -> String {
        let mut s = match &self.base {
            Base::Zero => "0".to_string(),
            Base::Cell { table, di, dj } => {
                let sub = |v: &str, k: i64| match k {
                    0 => v.to_string(),
                    k if k < 0 => format!("{v}{k}"),
                    k => format!("{v}+{k}"),
                };
                format!("{}[{}][{}]", table, sub("i", *di), sub("j", *dj))
            }
        };
        for (count, name) in [(self.gamma, "γ"), (self.open, "OPEN"), (self.ext, "EXT")] {
            match count {
                0 => {}
                1 => {
                    let _ = write!(s, " + {name}");
                }
                k => {
                    let _ = write!(s, " + {k}·{name}");
                }
            }
        }
        s
    }
}

/// A symbolic value: `max` over a set of terms. Kept sorted and
/// deduplicated so structural equality is semantic equality (of the
/// max-plus normal form).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SymVal {
    terms: Vec<Term>,
}

impl SymVal {
    fn new(terms: Vec<Term>) -> Self {
        let mut v = SymVal { terms };
        v.normalize();
        v
    }

    fn normalize(&mut self) {
        self.terms.sort();
        self.terms.dedup();
    }

    /// `max` of two symbolic values is term-set union.
    fn union(mut self, other: SymVal) -> SymVal {
        self.terms.extend(other.terms);
        self.normalize();
        self
    }

    /// `v + c` distributes over the max: add `c` to every term.
    fn add_consts(mut self, gamma: i64, open: i64, ext: i64) -> SymVal {
        for t in &mut self.terms {
            t.gamma += gamma;
            t.open += open;
            t.ext += ext;
        }
        self
    }

    /// Shift every cell reference by `(di, dj)` — substituting a
    /// definition of `X[i][j]` in for a reference to `X[i+di][j+dj]`.
    fn shift(mut self, di: i64, dj: i64) -> SymVal {
        for t in &mut self.terms {
            if let Base::Cell {
                di: tdi, dj: tdj, ..
            } = &mut t.base
            {
                *tdi += di;
                *tdj += dj;
            }
        }
        self
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.terms.iter().map(Term::describe).collect();
        format!("max({})", parts.join(", "))
    }
}

// ---------------------------------------------------------------------------
// Proof obligations.
// ---------------------------------------------------------------------------

/// How an obligation was (or was not) discharged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObligationStatus {
    /// Discharged symbolically (max-plus execution of the AST).
    Proved,
    /// A derived lemma: holds given the listed premises, each of which
    /// is a proved obligation or a checked library invariant.
    Conditional,
    /// An empirical premise, discharged by the bounded-exhaustive
    /// differential harness.
    Harness,
    /// Could not be justified; carries a caret diagnostic.
    Failed,
}

impl ObligationStatus {
    /// Stable lowercase word used in reports and the baseline.
    pub fn word(&self) -> &'static str {
        match self {
            ObligationStatus::Proved => "proved",
            ObligationStatus::Conditional => "conditional",
            ObligationStatus::Harness => "harness",
            ObligationStatus::Failed => "FAILED",
        }
    }
}

/// One machine-readable proof obligation for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Stable identifier (`eq2-col-unroll`, `lazy-f-bound`, …).
    pub id: &'static str,
    /// One-line statement of what is being claimed.
    pub claim: String,
    /// Outcome.
    pub status: ObligationStatus,
    /// Premises a [`ObligationStatus::Conditional`] /
    /// [`ObligationStatus::Harness`] discharge rests on.
    pub premises: Vec<String>,
    /// Evidence: the derived symbolic forms, bounds, or the mismatch.
    pub detail: String,
    /// Source span of the offending statement when `status` is
    /// [`ObligationStatus::Failed`].
    pub span: Option<Span>,
}

impl Obligation {
    /// Compiler-style rendering: the claim, and for failures a
    /// caret-underlined source excerpt (mirrors
    /// [`aalign_codegen::AnalyzeError::render`]).
    pub fn render(&self, src: &str) -> String {
        let head = format!("[{}] {}: {}", self.status.word(), self.id, self.claim);
        if self.status != ObligationStatus::Failed {
            return head;
        }
        let mut out = format!("{head}\nerror: {}", self.detail);
        if let Some(span) = self.span {
            if span.start <= src.len() {
                let (line, col) = span.line_col(src);
                let line_text = src.lines().nth(line - 1).unwrap_or("");
                let width = span
                    .end
                    .saturating_sub(span.start)
                    .clamp(1, line_text.len().saturating_sub(col - 1).max(1));
                let _ = write!(
                    out,
                    "\n  --> {line}:{col}\n   |\n{line:3}| {line_text}\n   | {}{}",
                    " ".repeat(col - 1),
                    "^".repeat(width)
                );
            }
        }
        out
    }
}

/// All obligations for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProof {
    /// Kernel display name (`sw-affine`, a file path, …).
    pub kernel: String,
    /// Paradigm label (`sw-aff`, …).
    pub label: String,
    /// The obligations, in a fixed order.
    pub obligations: Vec<Obligation>,
}

impl KernelProof {
    /// True when no obligation failed.
    pub fn is_discharged(&self) -> bool {
        self.obligations
            .iter()
            .all(|o| o.status != ObligationStatus::Failed)
    }

    /// The failed obligations.
    pub fn failures(&self) -> Vec<&Obligation> {
        self.obligations
            .iter()
            .filter(|o| o.status == ObligationStatus::Failed)
            .collect()
    }
}

/// Why a kernel could not even reach proof obligations.
#[derive(Debug, Clone)]
pub enum ProveError {
    /// The source did not parse.
    Parse(String),
    /// The paradigm classifier rejected it (rendered diagnostic).
    Classify(String),
    /// The AST lacks a structure the prover needs (should not happen
    /// for anything `analyze` accepted).
    Structure(String),
}

impl core::fmt::Display for ProveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProveError::Parse(m) => write!(f, "parse error: {m}"),
            ProveError::Classify(m) => write!(f, "classification failed:\n{m}"),
            ProveError::Structure(m) => write!(f, "malformed kernel structure: {m}"),
        }
    }
}

impl std::error::Error for ProveError {}

// ---------------------------------------------------------------------------
// AST extraction (the prover's view of the main nest).
// ---------------------------------------------------------------------------

struct RuleCtx {
    outer_var: String,
    inner_var: String,
    spec: KernelSpec,
    /// Assignments in the inner loop body: table → (value, span).
    rules: BTreeMap<String, (Expr, Span)>,
    /// The diagonal table name (`D`, or the result table when inlined).
    d_table: Option<String>,
}

fn extract_rules(prog: &[Stmt], spec: &KernelSpec) -> Result<RuleCtx, ProveError> {
    // Find the doubly nested main loop (same walk as the classifier).
    let mut found = None;
    'outer: for st in prog {
        if let StmtKind::For { var, body, .. } = &st.kind {
            for inner in body {
                if let StmtKind::For {
                    var: ivar,
                    body: ibody,
                    ..
                } = &inner.kind
                {
                    found = Some((var.clone(), ivar.clone(), ibody));
                    break 'outer;
                }
            }
        }
    }
    let (outer_var, inner_var, body) =
        found.ok_or_else(|| ProveError::Structure("no main loop nest".into()))?;

    let mut rules = BTreeMap::new();
    let mut d_table = None;
    for st in body {
        if let StmtKind::Assign { table, value, .. } = &st.kind {
            // The diagonal rule is the assignment whose RHS contains
            // the matrix access; remember which table holds it.
            if contains_matrix_access(value, &spec.matrix_name) && *table != spec.t_table {
                d_table = Some(table.clone());
            }
            rules.insert(table.clone(), (value.clone(), st.span));
        }
    }
    Ok(RuleCtx {
        outer_var,
        inner_var,
        spec: spec.clone(),
        rules,
        d_table,
    })
}

fn contains_matrix_access(e: &Expr, matrix: &str) -> bool {
    match &e.kind {
        ExprKind::Index { base, subs } => {
            base == matrix || subs.iter().any(|s| contains_matrix_access(s, matrix))
        }
        ExprKind::Call { args, .. } => args.iter().any(|a| contains_matrix_access(a, matrix)),
        ExprKind::Bin { lhs, rhs, .. } => {
            contains_matrix_access(lhs, matrix) || contains_matrix_access(rhs, matrix)
        }
        ExprKind::Neg(inner) => contains_matrix_access(inner, matrix),
        _ => false,
    }
}

/// Check an expression is the γ access `M[ctoi(S[i-1])][ctoi(Q[j-1])]`
/// (either subscript order). Returns false for anything else.
fn is_gamma_access(e: &Expr, ctx: &RuleCtx) -> bool {
    let ExprKind::Index { base, subs } = &e.kind else {
        return false;
    };
    if *base != ctx.spec.matrix_name || subs.len() != 2 {
        return false;
    }
    let role = |sub: &Expr| -> Option<&'static str> {
        let ExprKind::Call { name, args } = &sub.kind else {
            return None;
        };
        if name != "ctoi" || args.len() != 1 {
            return None;
        }
        let ExprKind::Index { base, subs } = &args[0].kind else {
            return None;
        };
        if subs.len() != 1 {
            return None;
        }
        let q_off = subs[0].index_offset(&ctx.inner_var) == Some(-1)
            || subs[0].as_ident() == Some(ctx.inner_var.as_str());
        let s_off = subs[0].index_offset(&ctx.outer_var) == Some(-1)
            || subs[0].as_ident() == Some(ctx.outer_var.as_str());
        if *base == ctx.spec.query_name && q_off {
            Some("q")
        } else if *base == ctx.spec.subject_name && s_off {
            Some("s")
        } else {
            None
        }
    };
    matches!(
        (role(&subs[0]), role(&subs[1])),
        (Some("q"), Some("s")) | (Some("s"), Some("q"))
    )
}

/// Evaluate an expression to a symbolic max-plus value.
fn eval(e: &Expr, ctx: &RuleCtx) -> Result<SymVal, String> {
    match &e.kind {
        ExprKind::Int(0) => Ok(SymVal::new(vec![Term {
            base: Base::Zero,
            gamma: 0,
            open: 0,
            ext: 0,
        }])),
        ExprKind::Int(v) => Err(format!("unsupported literal {v} (only 0 is a max operand)")),
        ExprKind::Index { base, subs } if subs.len() == 2 => {
            let di = subs[0]
                .index_offset(&ctx.outer_var)
                .ok_or_else(|| format!("subscript of {base} is not outer-var relative"))?;
            let dj = subs[1]
                .index_offset(&ctx.inner_var)
                .ok_or_else(|| format!("subscript of {base} is not inner-var relative"))?;
            Ok(SymVal::new(vec![Term::cell(base, di, dj)]))
        }
        ExprKind::Call { name, .. } if name == "max" => {
            let args = e.max_args().expect("max_args on a max call");
            let mut acc: Option<SymVal> = None;
            for a in args {
                let v = eval(a, ctx)?;
                acc = Some(match acc {
                    Some(prev) => prev.union(v),
                    None => v,
                });
            }
            acc.ok_or_else(|| "empty max".to_string())
        }
        ExprKind::Bin { .. } => {
            // base + NAMED_CONST, or base + γ-access (either order).
            if let Some((base_expr, cname)) = e.as_plus_const() {
                let v = eval(base_expr, ctx)?;
                return if Some(cname) == ctx.spec.gap_open_name.as_deref() {
                    Ok(v.add_consts(0, 1, 0))
                } else if cname == ctx.spec.gap_ext_name {
                    Ok(v.add_consts(0, 0, 1))
                } else {
                    Err(format!("unknown constant `{cname}`"))
                };
            }
            if let ExprKind::Bin {
                op: BinOp::Add,
                lhs,
                rhs,
            } = &e.kind
            {
                if is_gamma_access(rhs, ctx) {
                    return Ok(eval(lhs, ctx)?.add_consts(1, 0, 0));
                }
                if is_gamma_access(lhs, ctx) {
                    return Ok(eval(rhs, ctx)?.add_consts(1, 0, 0));
                }
            }
            Err("unsupported arithmetic shape".to_string())
        }
        other => Err(format!("unsupported expression {other:?}")),
    }
}

/// Substitute self-references `table[i+di][j+dj]` with the (shifted)
/// definition, once. Non-self terms pass through.
fn substitute_self(v: &SymVal, table: &str, def: &SymVal) -> SymVal {
    let mut out = Vec::new();
    for t in &v.terms {
        match &t.base {
            Base::Cell { table: tb, di, dj } if tb == table => {
                let sub = def
                    .clone()
                    .shift(*di, *dj)
                    .add_consts(t.gamma, t.open, t.ext);
                out.extend(sub.terms);
            }
            _ => out.push(t.clone()),
        }
    }
    SymVal::new(out)
}

/// The Eq. (2) gap family for direction `(di, dj)` (one of (−1,0) or
/// (0,−1)) at unroll depth `k`: heads `T + OPEN + (l−1)·EXT` for
/// `l = 1..=k` plus the residual `SELF + k·EXT`.
fn expected_family(t_table: &str, self_table: &str, di: i64, dj: i64, k: usize) -> SymVal {
    let mut terms = Vec::new();
    for l in 1..=k as i64 {
        let mut t = Term::cell(t_table, di * l, dj * l);
        t.open = 1;
        t.ext = l - 1;
        terms.push(t);
    }
    let mut residual = Term::cell(self_table, di * k as i64, dj * k as i64);
    residual.ext = k as i64;
    terms.push(residual);
    SymVal::new(terms)
}

// ---------------------------------------------------------------------------
// The prover.
// ---------------------------------------------------------------------------

/// Default gap bindings used to instantiate the `ScoreBounds`-
/// conditioned premises with concrete numbers (the repository's
/// acceptance bindings; the premises themselves are stated for any
/// binding `spec_to_config` accepts).
pub const PREMISE_BINDINGS: GapBindings = GapBindings {
    gap_open: -12,
    gap_ext: -2,
};

/// Sequence-length bound the numeric premises are instantiated at.
pub const PREMISE_MAX_LEN: usize = 1024;

/// Prove the conformance obligations for one kernel source.
///
/// Returns `Err` only when the source fails to parse or classify; a
/// kernel that classifies but cannot be *justified* comes back `Ok`
/// with failed obligations carrying caret diagnostics — report, don't
/// panic.
pub fn prove_kernel(name: &str, src: &str) -> Result<KernelProof, ProveError> {
    let prog = parse_program(src).map_err(|e| ProveError::Parse(e.to_string()))?;
    let spec = analyze(&prog).map_err(|e| ProveError::Classify(e.render(src)))?;
    let ctx = extract_rules(&prog, &spec)?;

    // O1 diag-term, O2/O3 the Eq.(2) gap families (column = U, row = L),
    // O4 result-max-complete, O5 wavefront.
    let mut obligations = vec![
        prove_diag(&ctx),
        prove_gap_family(
            &ctx,
            "eq2-col-unroll",
            "column gaps",
            (0, -1),
            ctx.spec.u_table.as_deref(),
        ),
        prove_gap_family(
            &ctx,
            "eq2-row-unroll",
            "row gaps",
            (-1, 0),
            ctx.spec.l_table.as_deref(),
        ),
        prove_result_max(&ctx),
        prove_wavefront(&ctx),
    ];

    // --- O6–O8: derived / harness obligations ------------------------------
    let bounds = premise_bounds(&spec);
    obligations.push(striped_permutation_obligation(&obligations));
    obligations.push(lazy_f_bound_obligation(&ctx.spec, bounds.as_ref()));
    obligations.push(rescue_obligation(&ctx.spec, bounds.as_ref()));

    Ok(KernelProof {
        kernel: name.to_string(),
        label: spec.label(),
        obligations,
    })
}

/// Instantiate `ScoreBounds` for the premise bindings, when they bind.
fn premise_bounds(spec: &KernelSpec) -> Option<ScoreBounds> {
    let matrix = &aalign_bio::matrices::BLOSUM62;
    spec_to_config(spec, PREMISE_BINDINGS, matrix)
        .ok()
        .map(|cfg| cfg.score_bounds(PREMISE_MAX_LEN, PREMISE_MAX_LEN))
}

fn prove_diag(ctx: &RuleCtx) -> Obligation {
    let id = "diag-term";
    let claim = "the diagonal operand is exactly T[i-1][j-1] + γ(S[i-1], Q[j-1])".to_string();
    // The diagonal may live in its own table or be inlined in the
    // result rule; find the expression containing the matrix access.
    let (holder, rule) = match ctx.d_table.as_ref().and_then(|d| ctx.rules.get(d)) {
        Some(r) => (ctx.d_table.clone().unwrap(), r),
        None => match ctx.rules.get(&ctx.spec.t_table) {
            Some(r) => (ctx.spec.t_table.clone(), r),
            None => {
                return Obligation {
                    id,
                    claim,
                    status: ObligationStatus::Failed,
                    premises: vec![],
                    detail: "no rule containing a matrix access".into(),
                    span: None,
                };
            }
        },
    };
    // Evaluate and look for the γ term among the operands. When the
    // diagonal is inlined in the result rule, substitute the same-
    // iteration helper definitions first so the γ term surfaces.
    let expected = {
        let mut t = Term::cell(&ctx.spec.t_table, -1, -1);
        t.gamma = 1;
        t
    };
    let evaluated = if holder == ctx.spec.t_table {
        eval_result(&rule.0, ctx)
    } else {
        eval(&rule.0, ctx)
    };
    match evaluated {
        Ok(v) if v.terms.contains(&expected) => Obligation {
            id,
            claim,
            status: ObligationStatus::Proved,
            premises: vec![],
            detail: format!("{holder} ⊇ {}", expected.describe()),
            span: None,
        },
        Ok(v) => Obligation {
            id,
            claim,
            status: ObligationStatus::Failed,
            premises: vec![],
            detail: format!(
                "expected the term {} among the operands of {holder}, got {}",
                expected.describe(),
                v.describe()
            ),
            span: Some(rule.1),
        },
        Err(why) => Obligation {
            id,
            claim,
            status: ObligationStatus::Failed,
            premises: vec![],
            detail: why,
            span: Some(rule.1),
        },
    }
}

fn prove_gap_family(
    ctx: &RuleCtx,
    id: &'static str,
    what: &str,
    dir: (i64, i64),
    helper: Option<&str>,
) -> Obligation {
    let k = UNROLL_DEPTH;
    let t = &ctx.spec.t_table;
    if let Some(h) = helper {
        // Affine: unroll the helper recurrence K steps; the result
        // must be exactly the Eq.(2) family. Equality of the first K
        // heads plus the uniform `+EXT` residual is the induction:
        // every further substitution repeats the same step.
        let claim = format!(
            "unrolling {h} yields the Eq.(2) {what} family T + OPEN + (l−1)·EXT, l = 1..{k}"
        );
        let Some((rule, span)) = ctx.rules.get(h) else {
            return Obligation {
                id,
                claim,
                status: ObligationStatus::Failed,
                premises: vec![],
                detail: format!("no recurrence for helper table {h}"),
                span: None,
            };
        };
        let def = match eval(rule, ctx) {
            Ok(v) => v,
            Err(why) => {
                return Obligation {
                    id,
                    claim,
                    status: ObligationStatus::Failed,
                    premises: vec![],
                    detail: why,
                    span: Some(*span),
                };
            }
        };
        let mut unrolled = def.clone();
        for _ in 1..k {
            unrolled = substitute_self(&unrolled, h, &def);
        }
        let want = expected_family(t, h, dir.0, dir.1, k);
        if unrolled == want {
            Obligation {
                id,
                claim,
                status: ObligationStatus::Proved,
                premises: vec![],
                detail: format!("{h}[i][j] = {}", unrolled.describe()),
                span: None,
            }
        } else {
            Obligation {
                id,
                claim,
                status: ObligationStatus::Failed,
                premises: vec![],
                detail: format!(
                    "unrolled family diverges from Eq.(2):\n  got:  {}\n  want: {}",
                    unrolled.describe(),
                    want.describe()
                ),
                span: Some(*span),
            }
        }
    } else {
        // Linear: the gap family folds through T itself. The result
        // rule must carry the family head T + EXT in this direction;
        // the full family follows by induction through T (substituting
        // the head into itself reproduces T + l·EXT).
        let claim = format!(
            "the result rule carries the linear {what} head T + EXT; the l-length family \
             follows by induction through {t}"
        );
        let Some((rule, span)) = ctx.rules.get(t) else {
            return Obligation {
                id,
                claim,
                status: ObligationStatus::Failed,
                premises: vec![],
                detail: format!("no result rule for {t}"),
                span: None,
            };
        };
        let head = {
            let mut h = Term::cell(t, dir.0, dir.1);
            h.ext = 1;
            h
        };
        match eval_result(rule, ctx) {
            Ok(v) if v.terms.contains(&head) => Obligation {
                id,
                claim,
                status: ObligationStatus::Proved,
                premises: vec![],
                detail: format!(
                    "head {} present; l-step gaps accumulate l·EXT through {t}",
                    head.describe()
                ),
                span: None,
            },
            Ok(v) => Obligation {
                id,
                claim,
                status: ObligationStatus::Failed,
                premises: vec![],
                detail: format!(
                    "expected head {} among the result operands, got {}",
                    head.describe(),
                    v.describe()
                ),
                span: Some(*span),
            },
            Err(why) => Obligation {
                id,
                claim,
                status: ObligationStatus::Failed,
                premises: vec![],
                detail: why,
                span: Some(*span),
            },
        }
    }
}

/// Evaluate the result rule with helper/diag tables substituted once
/// at their defining offsets, so the value is in terms of `T` cells,
/// residual helper cells, γ and the gap constants.
fn eval_result(rule: &Expr, ctx: &RuleCtx) -> Result<SymVal, String> {
    let mut v = eval(rule, ctx)?;
    for tbl in [
        ctx.d_table.as_deref(),
        ctx.spec.u_table.as_deref(),
        ctx.spec.l_table.as_deref(),
    ]
    .into_iter()
    .flatten()
    {
        if let Some((def_expr, _)) = ctx.rules.get(tbl) {
            let def = eval(def_expr, ctx)?;
            v = substitute_self(&v, tbl, &def);
        }
    }
    Ok(v)
}

fn prove_result_max(ctx: &RuleCtx) -> Obligation {
    let id = "result-max-complete";
    let spec = &ctx.spec;
    let t = &spec.t_table;
    let claim = format!(
        "{t}[i][j] = max over exactly the Eq.(2) operand set ({}diag, row head, column head)",
        if spec.local { "0, " } else { "" }
    );
    let Some((rule, span)) = ctx.rules.get(t) else {
        return Obligation {
            id,
            claim,
            status: ObligationStatus::Failed,
            premises: vec![],
            detail: format!("no result rule for {t}"),
            span: None,
        };
    };
    let got = match eval_result(rule, ctx) {
        Ok(v) => v,
        Err(why) => {
            return Obligation {
                id,
                claim,
                status: ObligationStatus::Failed,
                premises: vec![],
                detail: why,
                span: Some(*span),
            };
        }
    };

    let mut want = Vec::new();
    if spec.local {
        want.push(Term {
            base: Base::Zero,
            gamma: 0,
            open: 0,
            ext: 0,
        });
    }
    let mut diag = Term::cell(t, -1, -1);
    diag.gamma = 1;
    want.push(diag);
    if spec.affine {
        // After one substitution, each helper contributes its fresh-
        // open head and its self-extension residual.
        let u = spec.u_table.as_deref().unwrap_or("U");
        let l = spec.l_table.as_deref().unwrap_or("L");
        for (table, di, dj) in [(t.as_str(), 0, -1), (u, 0, -1)] {
            let mut term = Term::cell(table, di, dj);
            if table == t {
                term.open = 1;
            } else {
                term.ext = 1;
            }
            want.push(term);
        }
        for (table, di, dj) in [(t.as_str(), -1, 0), (l, -1, 0)] {
            let mut term = Term::cell(table, di, dj);
            if table == t {
                term.open = 1;
            } else {
                term.ext = 1;
            }
            want.push(term);
        }
    } else {
        for (di, dj) in [(0, -1), (-1, 0)] {
            let mut term = Term::cell(t, di, dj);
            term.ext = 1;
            want.push(term);
        }
    }
    let want = SymVal::new(want);
    if got == want {
        Obligation {
            id,
            claim,
            status: ObligationStatus::Proved,
            premises: vec![],
            detail: format!("{t}[i][j] = {}", got.describe()),
            span: None,
        }
    } else {
        Obligation {
            id,
            claim,
            status: ObligationStatus::Failed,
            premises: vec![],
            detail: format!(
                "operand set differs from Eq.(2):\n  got:  {}\n  want: {}",
                got.describe(),
                want.describe()
            ),
            span: Some(*span),
        }
    }
}

fn prove_wavefront(ctx: &RuleCtx) -> Obligation {
    let id = "wavefront";
    let claim = "every cell dependency lies in {(i-1,j), (i,j-1), (i-1,j-1)}".to_string();
    let mut bad = Vec::new();
    let mut deps = std::collections::BTreeSet::new();
    for (table, (rule, span)) in &ctx.rules {
        // The result rule forwards same-iteration helper/diag cells
        // (offset (0,0), computed earlier in the body); substitute
        // their definitions so only genuine cross-cell reads remain.
        let evaluated = if *table == ctx.spec.t_table {
            eval_result(rule, ctx)
        } else {
            eval(rule, ctx)
        };
        match evaluated {
            Ok(v) => {
                for t in &v.terms {
                    if let Base::Cell { table: tb, di, dj } = &t.base {
                        deps.insert((tb.clone(), *di, *dj));
                        let legal = matches!((di, dj), (-1, 0) | (0, -1) | (-1, -1));
                        if !legal {
                            bad.push((table.clone(), t.describe(), *span));
                        }
                    }
                }
            }
            Err(why) => bad.push((table.clone(), why, *span)),
        }
    }
    if bad.is_empty() {
        Obligation {
            id,
            claim,
            status: ObligationStatus::Proved,
            premises: vec![],
            detail: format!(
                "dependencies: {}",
                deps.iter()
                    .map(|(t, di, dj)| format!("{t}({di},{dj})"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            span: None,
        }
    } else {
        let (table, what, span) = bad.remove(0);
        Obligation {
            id,
            claim,
            status: ObligationStatus::Failed,
            premises: vec![],
            detail: format!("rule for {table} reads outside the wavefront: {what}"),
            span: Some(span),
        }
    }
}

fn striped_permutation_obligation(prior: &[Obligation]) -> Obligation {
    let wavefront_ok = prior
        .iter()
        .any(|o| o.id == "wavefront" && o.status == ObligationStatus::Proved);
    Obligation {
        id: "striped-permutation",
        claim: "the striped layout transform is score-preserving".to_string(),
        status: if wavefront_ok {
            ObligationStatus::Conditional
        } else {
            ObligationStatus::Failed
        },
        premises: vec![
            "wavefront obligation proved (all reads are column-local or previous-column)".into(),
            "StripedLayout::slot_of is a bijection query-position ↔ (segment, lane)".into(),
            "profile padding slots hold NEG_INF, so padded lanes never win a max".into(),
            "shift_insert_low realigns the previous column's last segment with boundary fill"
                .into(),
        ],
        detail: if wavefront_ok {
            "a bijective reindexing of max operands plus never-winning padding terms leaves \
             every max unchanged; column-to-column carries are exactly the (i-1, ·) reads the \
             wavefront proof located"
                .to_string()
        } else {
            "premise missing: the wavefront obligation did not hold".to_string()
        },
        span: None,
    }
}

fn lazy_f_bound_obligation(spec: &KernelSpec, bounds: Option<&ScoreBounds>) -> Obligation {
    let numeric = bounds.map_or_else(
        || "(premise bindings did not bind)".to_string(),
        |b| {
            let caps = [8u32, 16, 32]
                .iter()
                .filter(|&&w| b.fits(w))
                .map(|&w| {
                    let cap: i64 = match w {
                        8 => i8::MAX as i64,
                        16 => i16::MAX as i64,
                        _ => (i32::MAX / 4) as i64,
                    };
                    format!("i{w}: NEG_INF = {} < t_min − headroom = {}", -cap - 1, b.t_min - b.headroom)
                })
                .collect::<Vec<_>>()
                .join("; ");
            format!(
                "at GAP_OPEN={}, GAP_EXT={}, BLOSUM62, {len}×{len}: t_min={}, headroom={} > |θ|; {caps}",
                PREMISE_BINDINGS.gap_open,
                PREMISE_BINDINGS.gap_ext,
                b.t_min,
                b.headroom,
                len = PREMISE_MAX_LEN,
            )
        },
    );
    let _ = spec;
    Obligation {
        id: "lazy-f-bound",
        claim: "the lazy-F correction loop converges in at most P (= lane count) sweeps"
            .to_string(),
        status: ObligationStatus::Conditional,
        premises: vec![
            "eq2-col-unroll proved: each correction step adds exactly GAP_EXT (uniform \
             induction step), so carried F values only decrease along a sweep chain"
                .into(),
            "each sweep's shift_insert_low inserts the NEG_INF sentinel at lane 0; after P \
             sweeps every lane of the carry is sentinel-derived"
                .into(),
            "ScoreBounds::fits(bits) ⇒ NEG_INF = −cap−1 < t_min − headroom and headroom > |θ|, \
             so a sentinel-derived F can never pass the influence test any_gt(F, T + θ)"
                .into(),
        ],
        detail: format!(
            "hence sweeps ≤ P per column; the harness checks lazy_sweeps ≤ iterate_columns × \
             LANES on every enumerated pair. {numeric}"
        ),
        span: None,
    }
}

fn rescue_obligation(spec: &KernelSpec, bounds: Option<&ScoreBounds>) -> Obligation {
    let numeric = bounds.map_or_else(
        || "(premise bindings did not bind)".to_string(),
        |b| {
            format!(
                "at the premise bindings the ladder starts at i{}",
                b.min_lane_bits().unwrap_or(32)
            )
        },
    );
    let _ = spec;
    Obligation {
        id: "rescue-bit-exact",
        claim: "the narrow-width rescue ladder is bit-exact: an unsaturated narrow score \
                equals paradigm_dp, and saturated runs retry wider"
            .to_string(),
        status: ObligationStatus::Harness,
        premises: vec![
            "ScoreBounds::fits(w) ⇒ every intermediate stays below the saturation ceiling \
             (cap − headroom), where saturating adds are exact integer arithmetic"
                .into(),
            "a saturated narrow result is never reported: the kernel flags it and the ladder \
             retries at the next width (i32 rejected outright when even fits(32) fails)"
                .into(),
        ],
        detail: format!(
            "discharged by the differential harness: unsaturated kernel scores are compared \
             bit-exactly against paradigm_dp at every width, saturated narrow runs are \
             skipped-and-counted, and i32 saturation is reported as a violation. {numeric}"
        ),
        span: None,
    }
}

// ---------------------------------------------------------------------------
// The combined pass: proofs + differential harness + pinned baseline.
// ---------------------------------------------------------------------------

/// The builtin kernels the conformance pass proves by default.
pub fn builtin_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("sw-affine", aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE),
        ("nw-affine", aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE),
        ("sw-linear", aalign_codegen::SMITH_WATERMAN_LINEAR),
        ("nw-linear", aalign_codegen::NEEDLEMAN_WUNSCH_LINEAR),
    ]
}

/// Outcome of the full conformance pass.
#[derive(Debug, Clone)]
pub struct ConformancePass {
    /// Per-kernel proof obligations.
    pub proofs: Vec<KernelProof>,
    /// The differential harness run.
    pub harness: ConformanceReport,
}

impl ConformancePass {
    /// True when every obligation is discharged and the harness found
    /// every kernel bit-exact.
    pub fn is_clean(&self) -> bool {
        self.proofs.iter().all(KernelProof::is_discharged) && self.harness.is_bit_exact()
    }

    /// The baseline text this pass pins: the obligation inventory
    /// (`<kernel> <obligation> <status> 1`) plus the harness's variant
    /// coverage (`harness <variant> <config-count>`), sorted — the
    /// same `<key> <count>` shape as the atomics baseline, and the
    /// same exact-pin discipline.
    pub fn baseline_text(&self) -> String {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for p in &self.proofs {
            for o in &p.obligations {
                *counts
                    .entry(format!("{} {} {}", p.kernel, o.id, o.status.word()))
                    .or_default() += 1;
            }
        }
        for c in &self.harness.configs {
            for s in &c.stats {
                *counts.entry(format!("harness {}", s.variant)).or_default() += 1;
            }
        }
        let mut out = String::new();
        for (key, count) in counts {
            let _ = writeln!(out, "{key} {count}");
        }
        out
    }

    /// Exact two-way comparison against the checked-in baseline:
    /// missing, new, and changed entries are all drift.
    pub fn check_baseline(&self, baseline: &str) -> Vec<String> {
        let parse = |text: &str| -> BTreeMap<String, usize> {
            let mut m = BTreeMap::new();
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some((key, count)) = line.rsplit_once(' ') {
                    if let Ok(count) = count.parse::<usize>() {
                        m.insert(key.to_string(), count);
                    }
                }
            }
            m
        };
        let actual = parse(&self.baseline_text());
        let expected = parse(baseline);
        let mut problems = Vec::new();
        for (key, count) in &actual {
            match expected.get(key) {
                None => problems.push(format!("new entry not in baseline: {key} {count}")),
                Some(want) if want != count => {
                    problems.push(format!("{key}: count {count} != baseline {want}"));
                }
                Some(_) => {}
            }
        }
        for (key, count) in &expected {
            if !actual.contains_key(key) {
                problems.push(format!("baseline entry vanished: {key} {count}"));
            }
        }
        problems
    }
}

/// The pinned conformance inventory (obligations × kernels, harness
/// variant coverage). Regenerate with
/// `aalign-analyzer conformance --print-baseline`.
pub const CONFORMANCE_BASELINE: &str = include_str!("../conformance_baseline.txt");

/// "Verify, then generate": bind a [`KernelSpec`]'s symbolic gap
/// constants and run the resulting configuration through the
/// bounded-exhaustive differential harness. This is the gate for
/// codegen-emitted kernels — the same `spec_to_config` binding the
/// emitter's `config()` uses, checked bit-exactly against
/// `paradigm_dp` over every enumerated pair before any source is
/// trusted.
pub fn verify_spec(
    spec: &KernelSpec,
    bind: GapBindings,
    match_score: i32,
    mismatch_score: i32,
    bounds: &aalign_core::conformance::EnumBounds,
) -> Result<aalign_core::conformance::ConfigReport, aalign_codegen::interpret::BindError> {
    let matrix = aalign_bio::SubstMatrix::dna(match_score, mismatch_score);
    let cfg = spec_to_config(spec, bind, &matrix)?;
    Ok(aalign_core::conformance::run_config(&cfg, bounds, None))
}

/// Run the full pass: prove every source, then run the differential
/// harness at CI bounds.
pub fn run_conformance_pass(
    sources: &[(String, String)],
) -> Result<ConformancePass, (String, ProveError)> {
    let mut proofs = Vec::new();
    for (name, src) in sources {
        let proof = prove_kernel(name, src).map_err(|e| (name.clone(), e))?;
        proofs.push(proof);
    }
    let harness = run_harness(&HarnessOptions::ci());
    Ok(ConformancePass { proofs, harness })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prove_builtin(name: &str) -> KernelProof {
        let (label, src) = builtin_sources()
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap();
        prove_kernel(label, src).unwrap()
    }

    #[test]
    fn alg1_obligations_all_discharge() {
        let proof = prove_builtin("sw-affine");
        assert_eq!(proof.label, "sw-aff");
        assert_eq!(proof.obligations.len(), 8);
        assert!(
            proof.is_discharged(),
            "failures: {:?}",
            proof
                .failures()
                .iter()
                .map(|o| &o.detail)
                .collect::<Vec<_>>()
        );
        // The core rewrite obligations are fully symbolic.
        for id in [
            "diag-term",
            "eq2-col-unroll",
            "eq2-row-unroll",
            "result-max-complete",
            "wavefront",
        ] {
            let o = proof.obligations.iter().find(|o| o.id == id).unwrap();
            assert_eq!(o.status, ObligationStatus::Proved, "{id}: {}", o.detail);
        }
    }

    #[test]
    fn all_builtins_discharge() {
        for (name, src) in builtin_sources() {
            let proof = prove_kernel(name, src).unwrap();
            assert!(
                proof.is_discharged(),
                "{name} failures: {:?}",
                proof
                    .failures()
                    .iter()
                    .map(|o| (o.id, &o.detail))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn unroll_produces_eq2_family() {
        let prog = parse_program(aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE).unwrap();
        let spec = analyze(&prog).unwrap();
        let ctx = extract_rules(&prog, &spec).unwrap();
        let (rule, _) = &ctx.rules["U"];
        let def = eval(rule, &ctx).unwrap();
        let mut v = def.clone();
        for _ in 1..3 {
            v = substitute_self(&v, "U", &def);
        }
        assert_eq!(v, expected_family("T", "U", 0, -1, 3));
    }

    #[test]
    fn unjustifiable_fixture_fails_col_unroll_with_caret() {
        let proof = prove_kernel("fixture", UNJUSTIFIABLE_FIXTURE).unwrap();
        assert!(!proof.is_discharged());
        let failed = proof.failures();
        let col = failed.iter().find(|o| o.id == "eq2-col-unroll").unwrap();
        assert_eq!(col.status, ObligationStatus::Failed);
        assert!(col.span.is_some(), "failure must carry a span");
        let rendered = col.render(UNJUSTIFIABLE_FIXTURE);
        assert!(rendered.contains("-->"), "location line: {rendered}");
        assert!(rendered.contains('^'), "caret underline: {rendered}");
        // The span points at the offending U recurrence.
        let span = col.span.unwrap();
        assert!(UNJUSTIFIABLE_FIXTURE[span.start..span.end].starts_with("U[i][j]"));
    }

    #[test]
    fn fixture_diag_and_row_still_prove() {
        // Only the column family is broken; the prover must localize.
        let proof = prove_kernel("fixture", UNJUSTIFIABLE_FIXTURE).unwrap();
        for id in ["diag-term", "eq2-row-unroll"] {
            let o = proof.obligations.iter().find(|o| o.id == id).unwrap();
            assert_eq!(o.status, ObligationStatus::Proved, "{id}");
        }
    }

    #[test]
    fn verify_spec_gates_codegen_kernels() {
        use aalign_core::conformance::EnumBounds;
        for (name, src) in builtin_sources() {
            let prog = parse_program(src).unwrap();
            let spec = analyze(&prog).unwrap();
            let report = verify_spec(
                &spec,
                GapBindings {
                    gap_open: -4,
                    gap_ext: -1,
                },
                2,
                -3,
                &EnumBounds {
                    alphabet_size: 2,
                    max_len: 2,
                },
            )
            .unwrap();
            assert_eq!(report.mismatch_count, 0, "{name}: {:?}", report.mismatches);
            assert!(report.violations.is_empty(), "{name}");
        }
    }

    #[test]
    fn verify_spec_rejects_illegal_bindings() {
        use aalign_core::conformance::EnumBounds;
        let prog = parse_program(aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE).unwrap();
        let spec = analyze(&prog).unwrap();
        let err = verify_spec(
            &spec,
            GapBindings {
                gap_open: -1,
                gap_ext: -5,
            },
            2,
            -3,
            &EnumBounds {
                alphabet_size: 2,
                max_len: 1,
            },
        )
        .unwrap_err();
        assert_eq!(err, aalign_codegen::interpret::BindError::PositiveTheta(4));
    }

    #[test]
    fn pass_is_clean_and_matches_baseline() {
        let sources: Vec<(String, String)> = builtin_sources()
            .into_iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect();
        let pass = run_conformance_pass(&sources).unwrap();
        assert!(pass.is_clean());
        let drift = pass.check_baseline(CONFORMANCE_BASELINE);
        assert!(
            drift.is_empty(),
            "conformance inventory drift (regenerate with `aalign-analyzer conformance \
             --print-baseline`):\n{}\n\ncurrent baseline text:\n{}",
            drift.join("\n"),
            pass.baseline_text()
        );
    }

    #[test]
    fn baseline_detects_drift_both_ways() {
        let sources: Vec<(String, String)> = builtin_sources()
            .into_iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect();
        let pass = run_conformance_pass(&sources).unwrap();
        let mut plus = pass.baseline_text();
        plus.push_str("ghost-kernel diag-term proved 1\n");
        assert!(pass
            .check_baseline(&plus)
            .iter()
            .any(|p| p.contains("vanished")));
        let minus = pass
            .baseline_text()
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(pass
            .check_baseline(&minus)
            .iter()
            .any(|p| p.contains("not in baseline")));
    }
}
