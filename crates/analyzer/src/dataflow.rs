//! Paradigm dataflow verification (pass 2).
//!
//! The striped vectorizations (Alg. 2/3) are legal exactly when every
//! table read inside the main loop nest depends only on the three
//! wavefront-adjacent cells — `(i-1, j)`, `(i, j-1)`, `(i-1, j-1)` —
//! or on a cell `(i, j)` of a table already assigned earlier in the
//! same iteration (Alg. 1 computes `L`, `U`, `D` before `T` reads
//! them). Anything else — a forward dependency like `T[i][j+1]`, a
//! long-range one like `T[i-2][j]`, or a subscript the pass cannot
//! resolve to `var + const` — breaks the anti-diagonal ordering the
//! paper's Sec. IV argument rests on, so it is reported, with a span,
//! instead of silently vectorized wrong.

use aalign_codegen::ast::{Expr, ExprKind, Span, Stmt, StmtKind};

/// One dataflow violation, anchored to the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Offending source range (the subscript or index expression).
    pub span: Span,
    /// What is wrong and why it blocks vectorization.
    pub message: String,
}

impl Diagnostic {
    /// Compiler-style rendering against the original source: message,
    /// location, source line and caret underline.
    pub fn render(&self, src: &str) -> String {
        if self.span.start > src.len() {
            return format!("error: {}", self.message);
        }
        let (line, col) = self.span.line_col(src);
        let line_text = src.lines().nth(line - 1).unwrap_or("");
        let width = self
            .span
            .end
            .saturating_sub(self.span.start)
            .clamp(1, line_text.len().saturating_sub(col - 1).max(1));
        format!(
            "error: {}\n  --> {line}:{col}\n   |\n{line:3}| {line_text}\n   | {}{}",
            self.message,
            " ".repeat(col - 1),
            "^".repeat(width)
        )
    }
}

/// What the pass proved about a conforming kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowReport {
    /// DP tables assigned inside the main nest (e.g. `T`, `U`, `L`, `D`).
    pub tables: Vec<String>,
    /// Every distinct dependency `(table, di, dj)` observed in reads.
    pub deps: Vec<(String, i64, i64)>,
}

impl DataflowReport {
    /// True if some read depends on the previous row (`i-1`).
    pub fn reads_prev_row(&self) -> bool {
        self.deps.iter().any(|&(_, di, _)| di == -1)
    }

    /// True if some read depends on the previous column (`j-1`) — the
    /// direction the striped-scan correction runs along.
    pub fn reads_prev_col(&self) -> bool {
        self.deps.iter().any(|&(_, _, dj)| dj == -1)
    }
}

/// Verify the dependency directions of a parsed kernel.
///
/// Returns the observed dependency set on success, or every violation
/// (not just the first) with spans on failure.
///
/// ```
/// use aalign_codegen::{parse_program, ALG1_SMITH_WATERMAN_AFFINE};
/// let ast = parse_program(ALG1_SMITH_WATERMAN_AFFINE).unwrap();
/// let report = aalign_analyzer::verify_dataflow(&ast).unwrap();
/// assert!(report.reads_prev_row() && report.reads_prev_col());
/// ```
pub fn verify_dataflow(prog: &[Stmt]) -> Result<DataflowReport, Vec<Diagnostic>> {
    let Some(nest) = find_main_nest(prog) else {
        return Err(vec![Diagnostic {
            span: prog.first().map(|s| s.span).unwrap_or_default(),
            message: "no doubly nested main loop to verify".into(),
        }]);
    };

    // The DP tables are exactly the assignment targets in the nest.
    let tables: Vec<String> = {
        let mut t = Vec::new();
        for st in nest.body {
            if let StmtKind::Assign { table, .. } = &st.kind {
                if !t.contains(table) {
                    t.push(table.clone());
                }
            }
        }
        t
    };

    let mut diags = Vec::new();
    let mut deps: Vec<(String, i64, i64)> = Vec::new();
    // Tables already assigned earlier in the current iteration — a
    // `(0, 0)` read is legal only against these.
    let mut assigned_this_iter: Vec<&str> = Vec::new();

    for st in nest.body {
        let StmtKind::Assign { table, subs, value } = &st.kind else {
            diags.push(Diagnostic {
                span: st.span,
                message: "main-nest body must be straight-line assignments".into(),
            });
            continue;
        };
        // The write itself must be to (i, j): anything else reorders
        // the wavefront.
        if subs.len() == 2 {
            let wi = subs[0].index_offset(&nest.outer);
            let wj = subs[1].index_offset(&nest.inner);
            if wi != Some(0) || wj != Some(0) {
                diags.push(Diagnostic {
                    span: st.span,
                    message: format!(
                        "write to {table} must target ({}, {}) — found a shifted target",
                        nest.outer, nest.inner
                    ),
                });
            }
        }
        check_expr(
            value,
            &nest,
            &tables,
            &assigned_this_iter,
            &mut deps,
            &mut diags,
        );
        assigned_this_iter.push(table);
    }

    if diags.is_empty() {
        Ok(DataflowReport { tables, deps })
    } else {
        Err(diags)
    }
}

struct Nest<'a> {
    outer: String,
    inner: String,
    body: &'a [Stmt],
}

fn find_main_nest(prog: &[Stmt]) -> Option<Nest<'_>> {
    for st in prog {
        if let StmtKind::For { var, body, .. } = &st.kind {
            for inner in body {
                if let StmtKind::For {
                    var: ivar,
                    body: ibody,
                    ..
                } = &inner.kind
                {
                    return Some(Nest {
                        outer: var.clone(),
                        inner: ivar.clone(),
                        body: ibody,
                    });
                }
            }
        }
    }
    None
}

fn check_expr(
    e: &Expr,
    nest: &Nest<'_>,
    tables: &[String],
    assigned: &[&str],
    deps: &mut Vec<(String, i64, i64)>,
    diags: &mut Vec<Diagnostic>,
) {
    match &e.kind {
        ExprKind::Index { base, subs } if tables.iter().any(|t| t == base) => {
            if subs.len() != 2 {
                diags.push(Diagnostic {
                    span: e.span,
                    message: format!(
                        "table {base} accessed with {} subscripts, expected 2",
                        subs.len()
                    ),
                });
                return;
            }
            let di = subs[0].index_offset(&nest.outer);
            let dj = subs[1].index_offset(&nest.inner);
            let (Some(di), Some(dj)) = (di, dj) else {
                // Distinguish the common transposition mistake from a
                // genuinely unresolvable subscript.
                let transposed = subs[0].index_offset(&nest.inner).is_some()
                    && subs[1].index_offset(&nest.outer).is_some();
                diags.push(Diagnostic {
                    span: e.span,
                    message: if transposed {
                        format!(
                            "table {base} indexed as [{inner}][{outer}] — transposed \
                             subscripts make the dependency direction unresolvable",
                            inner = nest.inner,
                            outer = nest.outer
                        )
                    } else {
                        format!(
                            "cannot resolve {base} subscripts to `{} + const` and \
                             `{} + const`; the dependency direction is unprovable",
                            nest.outer, nest.inner
                        )
                    },
                });
                return;
            };
            let legal_neighbor = matches!((di, dj), (-1, 0) | (0, -1) | (-1, -1));
            let legal_same_cell = di == 0 && dj == 0 && assigned.iter().any(|t| t == base);
            if legal_neighbor || legal_same_cell {
                let key = (base.clone(), di, dj);
                if !deps.contains(&key) {
                    deps.push(key);
                }
            } else if di == 0 && dj == 0 {
                diags.push(Diagnostic {
                    span: e.span,
                    message: format!(
                        "{base}[{i}][{j}] is read before it is assigned in this \
                         iteration — same-cell reads are only legal against \
                         tables computed earlier in the loop body",
                        i = nest.outer,
                        j = nest.inner
                    ),
                });
            } else {
                let dir = |d: i64, v: &str| match d {
                    0 => v.to_string(),
                    d if d < 0 => format!("{v}{d}"),
                    d => format!("{v}+{d}"),
                };
                diags.push(Diagnostic {
                    span: e.span,
                    message: format!(
                        "illegal dependency: {base}[{}][{}] reads a cell the \
                         wavefront has not computed yet; vectorization requires \
                         dependencies only on ({o}-1,{n}), ({o},{n}-1), ({o}-1,{n}-1)",
                        dir(di, &nest.outer),
                        dir(dj, &nest.inner),
                        o = nest.outer,
                        n = nest.inner
                    ),
                });
            }
        }
        // Non-table arrays (sequences, the matrix) and their
        // subscripts are irrelevant to the wavefront.
        ExprKind::Index { .. } | ExprKind::Ident(_) | ExprKind::Int(_) => {}
        ExprKind::Call { args, .. } => {
            for a in args {
                check_expr(a, nest, tables, assigned, deps, diags);
            }
        }
        ExprKind::Bin { lhs, rhs, .. } => {
            check_expr(lhs, nest, tables, assigned, deps, diags);
            check_expr(rhs, nest, tables, assigned, deps, diags);
        }
        ExprKind::Neg(inner) => check_expr(inner, nest, tables, assigned, deps, diags),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_codegen::parse_program;

    fn verify(src: &str) -> Result<DataflowReport, Vec<Diagnostic>> {
        verify_dataflow(&parse_program(src).unwrap())
    }

    #[test]
    fn all_builtin_kernels_conform() {
        for src in [
            aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE,
            aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE,
            aalign_codegen::SMITH_WATERMAN_LINEAR,
            aalign_codegen::NEEDLEMAN_WUNSCH_LINEAR,
        ] {
            let report = verify(src).unwrap();
            assert!(report.reads_prev_row());
            assert!(report.reads_prev_col());
            assert!(report.tables.contains(&"T".to_string()));
        }
    }

    #[test]
    fn forward_dependency_rejected_with_span() {
        let src = "for (i = 1; i < n; i = i + 1) { for (j = 1; j < m; j = j + 1) { \
                   T[i][j] = max(0, T[i][j+1] + G, T[i-1][j] + G); } }";
        let diags = verify(src).unwrap_err();
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(&src[d.span.start..d.span.end], "T[i][j+1]");
        assert!(d.message.contains("illegal dependency"), "{}", d.message);
        let rendered = d.render(src);
        assert!(
            rendered.contains("^^^^^^^^^"),
            "caret under the read: {rendered}"
        );
    }

    #[test]
    fn long_range_dependency_rejected() {
        let src = "for (i = 1; i < n; i = i + 1) { for (j = 1; j < m; j = j + 1) { \
                   T[i][j] = max(0, T[i-2][j] + G, T[i][j-1] + G); } }";
        let diags = verify(src).unwrap_err();
        assert!(diags[0].message.contains("illegal dependency"));
        assert_eq!(&src[diags[0].span.start..diags[0].span.end], "T[i-2][j]");
    }

    #[test]
    fn transposed_subscripts_rejected() {
        let src = "for (i = 1; i < n; i = i + 1) { for (j = 1; j < m; j = j + 1) { \
                   T[i][j] = max(0, T[j][i] + G, T[i][j-1] + G); } }";
        let diags = verify(src).unwrap_err();
        assert!(
            diags[0].message.contains("transposed"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn same_cell_read_requires_prior_assignment() {
        // T reads U[i][j] but U is assigned *after* T.
        let src = "for (i = 1; i < n; i = i + 1) { for (j = 1; j < m; j = j + 1) { \
                   T[i][j] = max(0, U[i][j], T[i-1][j-1] + G); \
                   U[i][j] = max(U[i][j-1] + E, T[i][j-1] + O); } }";
        let diags = verify(src).unwrap_err();
        assert!(
            diags[0].message.contains("before it is assigned"),
            "{}",
            diags[0].message
        );
        assert_eq!(&src[diags[0].span.start..diags[0].span.end], "U[i][j]");
    }

    #[test]
    fn alg1_order_with_same_cell_reads_is_legal() {
        // The real Alg. 1 shape: L, U, D first, then T reads them at (i, j).
        let report = verify(aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE).unwrap();
        assert!(report.deps.iter().any(|d| d == &("D".to_string(), 0, 0)));
    }

    #[test]
    fn all_violations_reported_not_just_first() {
        let src = "for (i = 1; i < n; i = i + 1) { for (j = 1; j < m; j = j + 1) { \
                   T[i][j] = max(0, T[i][j+1] + G, T[i+1][j] + G); } }";
        let diags = verify(src).unwrap_err();
        assert_eq!(diags.len(), 2);
    }

    #[test]
    fn missing_nest_is_diagnosed() {
        let diags = verify("x = 1;").unwrap_err();
        assert!(diags[0].message.contains("no doubly nested"));
    }
}
