//! Unsafe-SIMD audit lint (pass 3).
//!
//! A deliberately dependency-free, text/token-level pass over the
//! hand-written SIMD backends (`crates/vec/src/*.rs`). It enforces
//! three rules this workspace's intrinsics code follows:
//!
//! 1. **Every `unsafe` carries a justification.** An `unsafe` block or
//!    function must have a `// SAFETY:` comment on the same line or in
//!    the comment/attribute block directly above it (a `/// # Safety`
//!    doc section on the item also counts).
//! 2. **Intrinsics imply a feature contract.** A function whose body
//!    calls `_mm*` intrinsics must either be a `#[target_feature]`
//!    wrapper or an `#[inline(always)]` engine method (the crate's
//!    pattern: engine construction proves the ISA, methods inline into
//!    a `#[target_feature]` caller). When `#[target_feature(enable)]`
//!    is present, the intrinsic families used must be covered by the
//!    enabled feature — `_mm512_*` inside an `avx2` wrapper is a bug.
//! 3. **Unsafe doesn't creep.** Per-file `unsafe` counts are pinned to
//!    a checked-in baseline; a count above baseline fails, below
//!    passes with a note to tighten the baseline.
//!
//! The lexical approach has known limits (it reads line comments, not
//! the full grammar; `unsafe` inside a string literal would be
//! miscounted) — acceptable for auditing this repository's own
//! backends, where those constructs don't occur, and it keeps the
//! analyzer free of syn-style dependencies so it runs fully offline.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// File the finding is in (as given to the audit).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl core::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Per-file audit result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAudit {
    /// File name (relative, e.g. `avx2.rs`).
    pub file: String,
    /// Number of `unsafe` usages found (code, not comments).
    pub unsafe_count: usize,
}

/// Result of auditing a set of files.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Per-file unsafe counts, in audit order.
    pub files: Vec<FileAudit>,
    /// All rule violations.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// True when no rule was violated.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The baseline text this report would pin (rule 3 format).
    pub fn baseline_text(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            let _ = writeln!(out, "{} {}", f.file, f.unsafe_count);
        }
        out
    }

    /// Compare against a checked-in baseline (`<file> <count>` lines).
    /// Returns violations: count regressions and unknown files.
    pub fn check_baseline(&self, baseline: &str) -> Vec<String> {
        let mut pinned = std::collections::BTreeMap::new();
        for line in baseline.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((name, count)) = line.rsplit_once(' ') {
                if let Ok(count) = count.parse::<usize>() {
                    pinned.insert(name.to_string(), count);
                }
            }
        }
        let mut problems = Vec::new();
        for f in &self.files {
            match pinned.get(&f.file) {
                None if f.unsafe_count > 0 => problems.push(format!(
                    "{}: {} unsafe usages but the file is not in the baseline — \
                     audit it and add `{} {}`",
                    f.file, f.unsafe_count, f.file, f.unsafe_count
                )),
                None => {}
                Some(&allowed) if f.unsafe_count > allowed => problems.push(format!(
                    "{}: unsafe count grew {} → {} — justify the new unsafe and \
                     update the baseline deliberately",
                    f.file, allowed, f.unsafe_count
                )),
                Some(_) => {}
            }
        }
        problems
    }
}

/// Is `line`'s code part (before any `//` comment) using `unsafe`?
/// Lint-name attributes (`unsafe_code`, `unsafe_op_in_unsafe_fn`) are
/// mentions, not usages.
fn unsafe_usages(code: &str) -> usize {
    let mut n = 0;
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(k) = code[from..].find("unsafe") {
        let at = from + k;
        let end = at + "unsafe".len();
        let pre_ok = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let post_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            n += 1;
        }
        from = end;
    }
    n
}

/// Split a source line into (code, comment) at the first `//`.
fn split_comment(line: &str) -> (&str, &str) {
    match line.find("//") {
        Some(k) => line.split_at(k),
        None => (line, ""),
    }
}

fn is_comment_or_attr(trimmed: &str) -> bool {
    trimmed.starts_with("//") || trimmed.starts_with("#[") || trimmed.starts_with("#![")
}

/// Does the comment/attribute block directly above `idx` (or the line
/// itself) justify an unsafe usage?
fn has_safety_comment(lines: &[&str], idx: usize) -> bool {
    let (_, comment) = split_comment(lines[idx]);
    if comment.contains("SAFETY") {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let t = lines[k].trim();
        if t.is_empty() || !is_comment_or_attr(t) {
            break;
        }
        if t.contains("SAFETY") || t.contains("# Safety") {
            return true;
        }
    }
    false
}

/// A `fn` definition line? (After stripping visibility/qualifiers.)
fn is_fn_def(trimmed: &str) -> bool {
    let mut s = trimmed;
    for prefix in [
        "pub(crate) ",
        "pub(super) ",
        "pub ",
        "const ",
        "unsafe ",
        "extern \"C\" ",
    ] {
        s = s.strip_prefix(prefix).unwrap_or(s);
    }
    s.starts_with("fn ")
}

/// Intrinsic families appearing in a line of code.
fn intrinsic_families(code: &str) -> Vec<&'static str> {
    let mut fams = Vec::new();
    for (needle, fam) in [("_mm512_", "avx512"), ("_mm256_", "avx2"), ("_mm_", "sse")] {
        if code.contains(needle) && !fams.contains(&fam) {
            fams.push(fam);
        }
    }
    fams
}

/// Which intrinsic families a `target_feature(enable = "...")` covers.
fn feature_covers(feature: &str, family: &str) -> bool {
    match family {
        "sse" => true, // every x86-64 feature level includes SSE
        "avx2" => feature.starts_with("avx"),
        "avx512" => feature.starts_with("avx512"),
        _ => false,
    }
}

/// Audit one file's source text. Returns the unsafe usage count and
/// any findings. `name` is used in finding messages.
pub fn audit_source(name: &str, src: &str) -> (usize, Vec<AuditFinding>) {
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    let mut unsafe_count = 0usize;

    // --- rule 1: unsafe needs SAFETY ---
    for (i, line) in lines.iter().enumerate() {
        let (code, _) = split_comment(line);
        if code.contains("unsafe_code") || code.contains("unsafe_op_in_unsafe_fn") {
            continue; // lint names in attributes, not usages
        }
        let n = unsafe_usages(code);
        if n == 0 {
            continue;
        }
        unsafe_count += n;
        if !has_safety_comment(&lines, i) {
            findings.push(AuditFinding {
                file: name.to_string(),
                line: i + 1,
                message: "unsafe without a `// SAFETY:` comment on or above it".into(),
            });
        }
    }

    // --- rule 2: intrinsics need a feature contract ---
    // Chunk the file at fn definitions; attributes live directly above.
    let fn_starts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter_map(|(i, l)| is_fn_def(l.trim()).then_some(i))
        .collect();
    for (k, &start) in fn_starts.iter().enumerate() {
        let end = fn_starts.get(k + 1).copied().unwrap_or(lines.len());
        // Gather the attribute block above the fn.
        let mut attrs = String::new();
        let mut a = start;
        while a > 0 {
            a -= 1;
            let t = lines[a].trim();
            if t.is_empty() || !is_comment_or_attr(t) {
                break;
            }
            if t.starts_with("#[") {
                attrs.push_str(t);
                attrs.push('\n');
            }
        }
        // Families used in the body.
        let mut fams: Vec<&'static str> = Vec::new();
        for line in &lines[start..end] {
            let (code, _) = split_comment(line);
            for fam in intrinsic_families(code) {
                if !fams.contains(&fam) {
                    fams.push(fam);
                }
            }
        }
        if fams.is_empty() {
            continue;
        }
        let tf_feature = attrs
            .split("target_feature(enable = \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next());
        let inline_always = attrs.contains("inline(always)");
        match tf_feature {
            None if !inline_always => findings.push(AuditFinding {
                file: name.to_string(),
                line: start + 1,
                message: format!(
                    "fn uses {} intrinsics but has neither #[target_feature(enable)] \
                     nor the #[inline(always)] engine-method contract",
                    fams.join("+")
                ),
            }),
            None => {} // inline(always) engine method: inlines into a tf caller
            Some(feature) => {
                for fam in &fams {
                    if !feature_covers(feature, fam) {
                        findings.push(AuditFinding {
                            file: name.to_string(),
                            line: start + 1,
                            message: format!(
                                "#[target_feature(enable = \"{feature}\")] fn calls \
                                 {fam} intrinsics the feature does not guarantee"
                            ),
                        });
                    }
                }
            }
        }
    }

    (unsafe_count, findings)
}

/// Audit every `.rs` file in `dir` (sorted by name, not recursive).
pub fn audit_dir(dir: &Path) -> std::io::Result<AuditReport> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    names.sort();
    let mut report = AuditReport::default();
    for path in names {
        let src = std::fs::read_to_string(&path)?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let (unsafe_count, findings) = audit_source(&name, &src);
        report.files.push(FileAudit {
            file: name,
            unsafe_count,
        });
        report.findings.extend(findings);
    }
    Ok(report)
}

/// The directory the audit targets by default: `crates/vec/src`,
/// located relative to this crate so the lint works from any CWD.
pub fn default_vec_src_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../vec/src")
}

/// The checked-in baseline for the default target (rule 3).
pub const VEC_BASELINE: &str = include_str!("../audit_baseline.txt");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unjustified_unsafe_is_flagged() {
        let src = "fn f() {\n    unsafe { g() }\n}\n";
        let (count, findings) = audit_source("x.rs", src);
        assert_eq!(count, 1);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("SAFETY"));
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_passes() {
        let above = "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}\n";
        let inline = "fn f() {\n    unsafe { g() } // SAFETY: fine\n}\n";
        for src in [above, inline] {
            let (count, findings) = audit_source("x.rs", src);
            assert_eq!(count, 1);
            assert!(findings.is_empty(), "{findings:?}");
        }
    }

    #[test]
    fn doc_safety_section_covers_unsafe_fn() {
        let src =
            "/// Does things.\n///\n/// # Safety\n/// Caller must check avx2.\nunsafe fn f() {}\n";
        let (count, findings) = audit_source("x.rs", src);
        assert_eq!(count, 1);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lint_names_are_not_usages() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n#![allow(unsafe_code)]\n";
        let (count, findings) = audit_source("x.rs", src);
        assert_eq!(count, 0);
        assert!(findings.is_empty());
    }

    #[test]
    fn commented_unsafe_is_not_counted() {
        let src = "// this fn is not unsafe at all\nfn f() {}\n";
        let (count, _) = audit_source("x.rs", src);
        assert_eq!(count, 0);
    }

    #[test]
    fn bare_intrinsic_fn_is_flagged() {
        let src = "fn f(a: __m256i) -> __m256i {\n    // SAFETY: x\n    unsafe { _mm256_add_epi32(a, a) }\n}\n";
        let (_, findings) = audit_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("neither"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn inline_always_engine_method_passes() {
        let src = "#[inline(always)]\nfn f(a: __m256i) -> __m256i {\n    // SAFETY: engine proves avx2\n    unsafe { _mm256_add_epi32(a, a) }\n}\n";
        let (_, findings) = audit_source("x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn target_feature_mismatch_is_flagged() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn f(a: __m512i) {\n    // SAFETY: x\n    unsafe { _mm512_add_epi32(a, a); }\n}\n";
        // Give the outer fn its own SAFETY doc so only rule 2 fires.
        let src = format!("/// # Safety\n/// caller checks\n{src}");
        let (_, findings) = audit_source("x.rs", &src);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("avx512"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn avx512_feature_covers_all_families() {
        let src = "/// # Safety\n/// caller checks\n#[target_feature(enable = \"avx512bw\")]\nunsafe fn f(a: __m512i) {\n    // SAFETY: x\n    unsafe { _mm512_add_epi32(a, a); _mm256_add_epi32(b, b); _mm_add_epi32(c, c); }\n}\n";
        let (_, findings) = audit_source("x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn bare_avx512_intrinsic_fn_is_flagged() {
        // The negative path for the widest backend: _mm512_* with
        // neither contract must be caught, same as the avx2 family.
        let src = "fn f(a: __m512i) -> __m512i {\n    // SAFETY: x\n    unsafe { _mm512_add_epi32(a, a) }\n}\n";
        let (_, findings) = audit_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("avx512") && findings[0].message.contains("neither"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn sse_feature_does_not_cover_avx512() {
        let src = "/// # Safety\n/// caller checks\n#[target_feature(enable = \"sse4.1\")]\nunsafe fn f(a: __m512i) {\n    // SAFETY: x\n    unsafe { _mm512_add_epi32(a, a); }\n}\n";
        let (_, findings) = audit_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("avx512"),
            "{}",
            findings[0].message
        );
    }

    /// The real avx512 backend, audited alone: clean, and its unsafe
    /// count matches the baseline entry exactly — the widest backend
    /// is covered even on hosts that can never execute it.
    #[test]
    fn avx512_backend_is_audited_standalone() {
        let path = default_vec_src_dir().join("avx512.rs");
        let src = std::fs::read_to_string(&path).unwrap();
        let (count, findings) = audit_source("avx512.rs", &src);
        assert!(findings.is_empty(), "{findings:?}");
        let pinned = VEC_BASELINE
            .lines()
            .find_map(|l| l.strip_prefix("avx512.rs "))
            .and_then(|c| c.trim().parse::<usize>().ok())
            .expect("avx512.rs must be pinned in the baseline");
        assert_eq!(count, pinned, "avx512.rs unsafe count drifted off baseline");
        assert!(count > 0, "the avx512 backend is intrinsics code");
    }

    #[test]
    fn baseline_regression_detected() {
        let report = AuditReport {
            files: vec![FileAudit {
                file: "avx2.rs".into(),
                unsafe_count: 30,
            }],
            findings: vec![],
        };
        let problems = report.check_baseline("avx2.rs 26\n");
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("grew"));
        assert!(report.check_baseline("avx2.rs 30\n").is_empty());
        // Below baseline is fine.
        assert!(report.check_baseline("avx2.rs 31\n").is_empty());
    }

    #[test]
    fn unknown_file_with_unsafe_detected() {
        let report = AuditReport {
            files: vec![FileAudit {
                file: "newbackend.rs".into(),
                unsafe_count: 3,
            }],
            findings: vec![],
        };
        let problems = report.check_baseline("avx2.rs 26\n");
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("not in the baseline"));
    }

    /// The real backends must pass the lint and match the baseline —
    /// this is the repo's own audit, run on every `cargo test`.
    #[test]
    fn vec_backends_pass_audit_and_baseline() {
        let report = audit_dir(&default_vec_src_dir()).unwrap();
        assert!(
            report.is_clean(),
            "audit findings:\n{}",
            report
                .findings
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        let problems = report.check_baseline(VEC_BASELINE);
        assert!(problems.is_empty(), "baseline violations: {problems:?}");
    }
}
