//! Atomics-discipline lint (pass 4).
//!
//! A dependency-free, text-level pass over the concurrent crates
//! (`crates/par/src`, `crates/obs/src`, `crates/serve/src`) enforcing
//! the workspace's memory-ordering discipline:
//!
//! 1. **Every atomic operation carries a justification.** A line
//!    performing an atomic `load`/`store`/`swap`/`fetch_*`/
//!    `compare_exchange` must have an `// ORDER:` comment on the same
//!    line or in the comment block directly above it, explaining why
//!    its `Ordering` is sufficient.
//! 2. **`SeqCst` is never the default.** A `SeqCst` site's `ORDER:`
//!    justification must name `SeqCst` explicitly — sequential
//!    consistency has to be argued for, not left over from a
//!    copy-paste.
//! 3. **`Relaxed` must not claim publication.** A `Relaxed` site
//!    whose justification uses publication vocabulary (publish,
//!    publication, handoff, release, acquire, happens-before) is
//!    contradicting itself: data handoff needs a Release/Acquire
//!    edge, so either the ordering or the claim is wrong.
//! 4. **The inventory is pinned.** The full set of atomic sites —
//!    `(file, operation, ordering)` with counts — must exactly match
//!    a checked-in baseline, so any new atomic, removed atomic, or
//!    ordering change shows up in review as a deliberate baseline
//!    edit.
//!
//! This static pass is the deliberate complement of the loom suites
//! in `crates/par/tests/loom_*.rs`: the vendored model checker
//! explores interleavings under sequential consistency (orderings are
//! not modeled), so the per-site `ORDER:` proofs are what carry the
//! weak-memory argument. Like the unsafe audit, the pass is lexical —
//! it reads lines and comments, not the full grammar — which is
//! acceptable for this repository's own sources and keeps the
//! analyzer fully offline. `#[cfg(test)]` modules are skipped: test
//! assertions routinely use `Relaxed` probes whose orderings are
//! irrelevant.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrencyFinding {
    /// File the finding is in (label-relative, e.g. `par/engine.rs`).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl core::fmt::Display for ConcurrencyFinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// One atomic operation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// File (label-relative, e.g. `par/protocol.rs`).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Operation (`load`, `store`, `fetch_add`, ...). `atomic` when
    /// the operation could not be identified near the ordering.
    pub op: String,
    /// The `Ordering::` variant used.
    pub ordering: String,
}

/// Result of scanning a set of files.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyReport {
    /// Every atomic site found, in scan order.
    pub sites: Vec<AtomicSite>,
    /// All rule violations.
    pub findings: Vec<ConcurrencyFinding>,
}

impl ConcurrencyReport {
    /// True when no rule was violated.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The baseline text this report would pin (rule 4 format:
    /// `<file> <op> <ordering> <count>` lines, sorted).
    pub fn baseline_text(&self) -> String {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for s in &self.sites {
            *counts
                .entry((s.file.clone(), s.op.clone(), s.ordering.clone()))
                .or_default() += 1;
        }
        let mut out = String::new();
        for ((file, op, ordering), count) in counts {
            let _ = writeln!(out, "{file} {op} {ordering} {count}");
        }
        out
    }

    /// Compare against a checked-in baseline. Unlike the unsafe-count
    /// baseline (a one-sided ceiling), the atomics inventory is an
    /// **exact** pin: new sites, vanished sites, moved orderings and
    /// changed counts are all drift.
    pub fn check_baseline(&self, baseline: &str) -> Vec<String> {
        let parse = |text: &str| -> BTreeMap<String, usize> {
            let mut m = BTreeMap::new();
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some((key, count)) = line.rsplit_once(' ') {
                    if let Ok(count) = count.parse::<usize>() {
                        m.insert(key.to_string(), count);
                    }
                }
            }
            m
        };
        let pinned = parse(baseline);
        let actual = parse(&self.baseline_text());
        let mut problems = Vec::new();
        for (key, &count) in &actual {
            match pinned.get(key) {
                None => problems.push(format!(
                    "new atomic site class `{key}` ({count} site(s)) not in the baseline — \
                     justify the ordering and add `{key} {count}`"
                )),
                Some(&allowed) if allowed != count => problems.push(format!(
                    "atomic site class `{key}` count changed {allowed} → {count} — \
                     update the baseline deliberately"
                )),
                Some(_) => {}
            }
        }
        for key in pinned.keys() {
            if !actual.contains_key(key) {
                problems.push(format!(
                    "baseline entry `{key}` no longer exists — remove it so the \
                     inventory stays exact"
                ));
            }
        }
        problems
    }
}

/// The atomic memory orderings (as written after `Ordering::`).
/// `std::cmp::Ordering` variants (Less/Equal/Greater) never match.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic operations the lint recognizes, longest-match first so
/// `compare_exchange_weak` wins over `compare_exchange`.
const OPS: [&str; 11] = [
    "compare_exchange_weak",
    "compare_exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "swap",
    "store",
    "load",
];

/// Vocabulary that claims publication/handoff semantics. A `Relaxed`
/// justification using it is self-contradictory (rule 3).
const PUBLICATION_WORDS: [&str; 6] = [
    "publish",
    "publication",
    "handoff",
    "release",
    "acquire",
    "happens-before",
];

/// Split a source line into (code, comment) at the first `//`.
fn split_comment(line: &str) -> (&str, &str) {
    match line.find("//") {
        Some(k) => line.split_at(k),
        None => (line, ""),
    }
}

fn is_comment(trimmed: &str) -> bool {
    trimmed.starts_with("//")
}

/// Find the `Ordering::<variant>` uses in a line's code part,
/// returning the variants in order of appearance.
fn ordering_uses(code: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(k) = code[from..].find("Ordering::") {
        let at = from + k + "Ordering::".len();
        let rest = &code[at..];
        if let Some(&ord) = ORDERINGS.iter().find(|o| {
            rest.starts_with(**o)
                && !rest[o.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        }) {
            found.push(ord);
        }
        from = at;
    }
    found
}

/// Identify the atomic operation a use of `Ordering::` belongs to:
/// the last recognized `.op(` on the same line before the ordering,
/// or (for rustfmt-wrapped calls) on up to 3 lines above. Returns
/// the operation and the line index the call starts on — the anchor
/// for the `ORDER:` justification lookup.
fn op_for_site(lines: &[&str], idx: usize) -> Option<(usize, &'static str)> {
    let last_op_in = |code: &str| -> Option<(usize, &'static str)> {
        let mut best: Option<(usize, &'static str)> = None;
        for op in OPS {
            let needle = format!(".{op}(");
            let mut from = 0;
            while let Some(k) = code[from..].find(&needle) {
                let at = from + k;
                if best.is_none_or(|(b, _)| at > b) {
                    best = Some((at, op));
                }
                from = at + needle.len();
            }
        }
        best
    };
    let (code, _) = split_comment(lines[idx]);
    if let Some((_, op)) = last_op_in(code) {
        return Some((idx, op));
    }
    for back in 1..=3 {
        let Some(k) = idx.checked_sub(back) else {
            break;
        };
        let (code, _) = split_comment(lines[k]);
        if let Some((_, op)) = last_op_in(code) {
            return Some((k, op));
        }
    }
    None
}

/// Collect the `ORDER:` justification covering line `idx`: the same
/// line's comment, or the comment block directly above (the
/// justification is everything from the `ORDER:` marker to the end of
/// the block). Returns `None` when no marker is found.
fn order_justification(lines: &[&str], idx: usize) -> Option<String> {
    let (_, comment) = split_comment(lines[idx]);
    if comment.contains("ORDER:") {
        return Some(comment.trim_start_matches('/').trim().to_string());
    }
    // Walk to the top of the contiguous comment block above.
    let mut top = idx;
    while top > 0 && is_comment(lines[top - 1].trim()) {
        top -= 1;
    }
    if top == idx {
        return None;
    }
    // The justification starts at the *last* ORDER: marker in the
    // block (a block may justify several consecutive sites) and runs
    // to the end of the block.
    let marker = (top..idx).rev().find(|&k| lines[k].contains("ORDER:"))?;
    let mut text = String::new();
    for line in &lines[marker..idx] {
        let t = line.trim().trim_start_matches('/').trim();
        text.push_str(t);
        text.push(' ');
    }
    Some(text.trim().to_string())
}

/// Scan one file's source text. Returns the atomic sites found and
/// any findings. `name` is used in site and finding records.
///
/// Scanning stops at a `#[cfg(test)]` attribute: by this workspace's
/// convention the test module is the final item of a file, and test
/// probes are exempt from the ordering discipline.
pub fn scan_source(name: &str, src: &str) -> (Vec<AtomicSite>, Vec<ConcurrencyFinding>) {
    let lines: Vec<&str> = src.lines().collect();
    let mut sites = Vec::new();
    let mut findings = Vec::new();

    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if trimmed == "#[cfg(test)]" {
            break;
        }
        if trimmed.starts_with("use ") || is_comment(trimmed) {
            continue;
        }
        let (code, _) = split_comment(line);
        let uses = ordering_uses(code);
        if uses.is_empty() {
            continue;
        }
        let (anchor, op) = op_for_site(&lines, i)
            .map(|(k, op)| (k, op.to_string()))
            .unwrap_or((i, "atomic".to_string()));
        let justification =
            order_justification(&lines, i).or_else(|| order_justification(&lines, anchor));
        for ordering in &uses {
            sites.push(AtomicSite {
                file: name.to_string(),
                line: i + 1,
                op: op.clone(),
                ordering: (*ordering).to_string(),
            });
        }
        let Some(just) = justification else {
            findings.push(ConcurrencyFinding {
                file: name.to_string(),
                line: i + 1,
                message: format!(
                    "atomic `{op}` without an `// ORDER:` justification on or above it"
                ),
            });
            continue;
        };
        let lower = just.to_lowercase();
        for ordering in &uses {
            match *ordering {
                "SeqCst" if !just.contains("SeqCst") => findings.push(ConcurrencyFinding {
                    file: name.to_string(),
                    line: i + 1,
                    message: format!(
                        "`SeqCst` on `{op}` but the ORDER justification never argues for \
                         sequential consistency (it must name SeqCst explicitly)"
                    ),
                }),
                "Relaxed" => {
                    if let Some(word) = PUBLICATION_WORDS.iter().find(|w| lower.contains(**w)) {
                        findings.push(ConcurrencyFinding {
                            file: name.to_string(),
                            line: i + 1,
                            message: format!(
                                "`Relaxed` on `{op}` but the ORDER justification claims \
                                 publication semantics (`{word}`) — data handoff needs a \
                                 Release/Acquire edge"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    (sites, findings)
}

/// Scan every `.rs` file in each `(label, dir)` pair (sorted by name,
/// not recursive). Site files are recorded as `<label>/<file>`.
pub fn scan_dirs(dirs: &[(String, PathBuf)]) -> std::io::Result<ConcurrencyReport> {
    let mut report = ConcurrencyReport::default();
    for (label, dir) in dirs {
        let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        names.sort();
        for path in names {
            let src = std::fs::read_to_string(&path)?;
            let file = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
            let name = format!("{label}/{file}");
            let (sites, findings) = scan_source(&name, &src);
            report.sites.extend(sites);
            report.findings.extend(findings);
        }
    }
    Ok(report)
}

/// The directories the lint targets by default — the concurrent
/// crates, located relative to this crate so the lint works from any
/// CWD.
pub fn default_concurrency_dirs() -> Vec<(String, PathBuf)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    vec![
        ("par".to_string(), root.join("../par/src")),
        ("obs".to_string(), root.join("../obs/src")),
        ("serve".to_string(), root.join("../serve/src")),
    ]
}

/// The checked-in atomics inventory for the default targets (rule 4).
pub const CONCURRENCY_BASELINE: &str = include_str!("../concurrency_baseline.txt");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_order_comment_is_flagged() {
        let src = "fn f(a: &AtomicUsize) {\n    a.store(1, Ordering::Relaxed);\n}\n";
        let (sites, findings) = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].op, "store");
        assert_eq!(sites[0].ordering, "Relaxed");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("ORDER"), "{}", findings[0]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn order_comment_inline_or_above_passes() {
        let above = "fn f(a: &AtomicUsize) {\n    // ORDER: Relaxed — counter only.\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        let inline =
            "fn f(a: &AtomicUsize) {\n    a.load(Ordering::Relaxed); // ORDER: probe only\n}\n";
        for src in [above, inline] {
            let (sites, findings) = scan_source("x.rs", src);
            assert_eq!(sites.len(), 1);
            assert!(findings.is_empty(), "{findings:?}");
        }
    }

    #[test]
    fn wrapped_call_finds_op_on_a_previous_line() {
        let src = "fn f(a: &AtomicUsize) {\n    // ORDER: Relaxed — counter only.\n    a.fetch_add(\n        1,\n        Ordering::Relaxed,\n    );\n}\n";
        let (sites, findings) = scan_source("x.rs", src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].op, "fetch_add");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unjustified_seqcst_is_flagged() {
        let src = "fn f(a: &AtomicUsize) {\n    // ORDER: just to be safe.\n    a.store(1, Ordering::SeqCst);\n}\n";
        let (_, findings) = scan_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("SeqCst"), "{}", findings[0]);
    }

    #[test]
    fn argued_seqcst_passes() {
        let src = "fn f(a: &AtomicUsize) {\n    // ORDER: SeqCst — this flag totally orders with the\n    // drain flag; weaker orders admit the lost-wakeup cycle.\n    a.store(1, Ordering::SeqCst);\n}\n";
        let (_, findings) = scan_source("x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn relaxed_claiming_publication_is_flagged() {
        let src = "fn f(a: &AtomicBool) {\n    // ORDER: Relaxed — publishes the batch to the drainer.\n    a.store(true, Ordering::Relaxed);\n}\n";
        let (_, findings) = scan_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("publication semantics"),
            "{}",
            findings[0]
        );
    }

    #[test]
    fn release_acquire_pair_with_handoff_claim_passes() {
        let src = "fn f(a: &AtomicBool) {\n    // ORDER: Release — publishes prior writes to the acquirer.\n    a.store(true, Ordering::Release);\n    // ORDER: Acquire — pairs with the Release store above.\n    a.load(Ordering::Acquire);\n}\n";
        let (sites, findings) = scan_source("x.rs", src);
        assert_eq!(sites.len(), 2);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn probe(a: &AtomicUsize) {\n        a.load(Ordering::Relaxed);\n    }\n}\n";
        let (sites, findings) = scan_source("x.rs", src);
        assert!(sites.is_empty());
        assert!(findings.is_empty());
    }

    #[test]
    fn use_lines_and_cmp_ordering_are_not_sites() {
        let src = "use std::sync::atomic::Ordering;\nfn f(x: u32, y: u32) -> std::cmp::Ordering {\n    x.cmp(&y).then(std::cmp::Ordering::Less)\n}\n";
        let (sites, findings) = scan_source("x.rs", src);
        assert!(sites.is_empty(), "{sites:?}");
        assert!(findings.is_empty());
    }

    #[test]
    fn a_block_justifies_only_back_to_its_last_marker() {
        // The block's ORDER marker covers the site; a stray earlier
        // comment line with publication vocabulary above the marker
        // must not poison the justification.
        let src = "fn f(a: &AtomicUsize) {\n    // Workers publish at shard boundaries.\n    // ORDER: Relaxed — counter only.\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        let (_, findings) = scan_source("x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn baseline_drift_is_detected_both_ways() {
        let report = ConcurrencyReport {
            sites: vec![AtomicSite {
                file: "par/a.rs".into(),
                line: 1,
                op: "load".into(),
                ordering: "Relaxed".into(),
            }],
            findings: vec![],
        };
        assert!(report
            .check_baseline("par/a.rs load Relaxed 1\n")
            .is_empty());
        // New site class.
        let drift = report.check_baseline("");
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("new atomic site class"), "{drift:?}");
        // Count change.
        let drift = report.check_baseline("par/a.rs load Relaxed 2\n");
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("count changed"), "{drift:?}");
        // Vanished site.
        let drift = report.check_baseline("par/a.rs load Relaxed 1\npar/b.rs store Release 1\n");
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("no longer exists"), "{drift:?}");
    }

    /// The real concurrent crates must pass the lint and match the
    /// baseline — the repo's own discipline, run on every `cargo
    /// test`.
    #[test]
    fn concurrent_crates_pass_lint_and_baseline() {
        let report = scan_dirs(&default_concurrency_dirs()).unwrap();
        assert!(
            report.is_clean(),
            "concurrency findings:\n{}",
            report
                .findings
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        let problems = report.check_baseline(CONCURRENCY_BASELINE);
        assert!(
            problems.is_empty(),
            "baseline drift:\n{}\nactual inventory:\n{}",
            problems.join("\n"),
            report.baseline_text()
        );
    }
}
