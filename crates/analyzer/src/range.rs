//! Score range / overflow analysis (pass 1).
//!
//! A spec-driven front end over the
//! [`aalign_core::ScoreBounds`] interval arithmetic in
//! `aalign-core`: bind a [`KernelSpec`]'s symbolic gap constants,
//! attach a matrix and maximum sequence lengths, and report — before
//! anything runs — the conservative T/U/L value intervals, the
//! minimal lane width that provably cannot overflow, and the
//! bias/saturation constants the biased-unsigned kernels would use.
//! Because the runtime width policy consults the *same* analysis,
//! the report is a statement about what the kernels will actually do,
//! not a parallel reimplementation that can drift.

use aalign_bio::SubstMatrix;
use aalign_codegen::emit::GapBindings;
use aalign_codegen::interpret::BindError;
use aalign_codegen::{spec_to_config, KernelSpec};
use aalign_core::{AlignConfig, ScoreBounds};

/// The result of the range pass for one kernel configuration.
#[derive(Debug, Clone)]
pub struct RangeReport {
    /// Kernel label (`sw-aff`, `nw-lin`, …).
    pub label: String,
    /// Matrix name the analysis ran with.
    pub matrix: String,
    /// Assumed maximum query length.
    pub max_query: usize,
    /// Assumed maximum subject length.
    pub max_subject: usize,
    /// The interval-arithmetic bounds.
    pub bounds: ScoreBounds,
    /// Minimal safe lane width in bits, or `None` when even i32 wraps
    /// (the configuration must be rejected).
    pub lane_bits: Option<u32>,
    /// Lane widths the analysis rules out (would overflow).
    pub rejected_bits: Vec<u32>,
    /// The bound configuration, for cross-validation against the
    /// runtime kernels.
    pub config: AlignConfig,
}

impl RangeReport {
    /// True when no kernel lane can represent the score range.
    pub fn overflows_i32(&self) -> bool {
        self.lane_bits.is_none()
    }
}

impl core::fmt::Display for RangeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = &self.bounds;
        writeln!(
            f,
            "range analysis: {} vs {} (query ≤ {}, subject ≤ {})",
            self.label, self.matrix, self.max_query, self.max_subject
        )?;
        writeln!(f, "  T ∈ [{}, {}]", b.t_min, b.t_max)?;
        writeln!(f, "  U, L ∈ [{}, {}]", b.ul_min, b.ul_max)?;
        writeln!(f, "  headroom {}  bias {}", b.headroom, b.bias())?;
        for bits in [8u32, 16, 32] {
            let verdict = if b.fits(bits) { "ok" } else { "OVERFLOW" };
            writeln!(
                f,
                "  i{bits:<2} {verdict:8} (saturation ceiling {})",
                b.saturation_ceiling(bits)
            )?;
        }
        match self.lane_bits {
            Some(bits) => write!(f, "  => minimal safe lane width: i{bits}"),
            None => write!(f, "  => REJECT: even i32 lanes can wrap for these lengths"),
        }
    }
}

/// Run the range pass: bind the spec's constants, derive the bounds,
/// select the lane width.
pub fn analyze_range(
    spec: &KernelSpec,
    bind: GapBindings,
    matrix: &SubstMatrix,
    max_query: usize,
    max_subject: usize,
) -> Result<RangeReport, BindError> {
    let config = spec_to_config(spec, bind, matrix)?;
    let bounds = config.score_bounds(max_query, max_subject);
    let rejected_bits = [8u32, 16, 32]
        .into_iter()
        .filter(|&b| !bounds.fits(b))
        .collect();
    Ok(RangeReport {
        label: spec.label(),
        matrix: matrix.name().to_string(),
        max_query,
        max_subject,
        bounds,
        lane_bits: bounds.min_lane_bits(),
        rejected_bits,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_codegen::{analyze, parse_program};

    fn alg1_spec() -> KernelSpec {
        analyze(&parse_program(aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap()
    }

    /// The acceptance case: BLOSUM62 with open 3 / ext 1 overflows i8
    /// at realistic protein lengths, and i16 is selected.
    #[test]
    fn blosum62_small_gaps_select_i16() {
        let report = analyze_range(
            &alg1_spec(),
            GapBindings {
                gap_open: -3,
                gap_ext: -1,
            },
            &BLOSUM62,
            256,
            256,
        )
        .unwrap();
        assert!(report.rejected_bits.contains(&8), "i8 must be flagged");
        assert_eq!(report.lane_bits, Some(16));
        let text = report.to_string();
        assert!(text.contains("i8  OVERFLOW"), "{text}");
        assert!(text.contains("minimal safe lane width: i16"), "{text}");
    }

    #[test]
    fn tiny_local_alignments_fit_i8() {
        let report = analyze_range(
            &alg1_spec(),
            GapBindings {
                gap_open: -12,
                gap_ext: -2,
            },
            &BLOSUM62,
            4,
            4,
        )
        .unwrap();
        assert_eq!(report.lane_bits, Some(8));
    }

    #[test]
    fn absurd_lengths_reject_even_i32() {
        // ~10^8-residue global alignment: the worst path exceeds the
        // i32 kernels' MAX/4 clamp.
        let spec =
            analyze(&parse_program(aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE).unwrap()).unwrap();
        let report = analyze_range(
            &spec,
            GapBindings {
                gap_open: -12,
                gap_ext: -2,
            },
            &BLOSUM62,
            100_000_000,
            100_000_000,
        )
        .unwrap();
        assert!(report.overflows_i32());
        assert!(report.to_string().contains("REJECT"));
    }

    #[test]
    fn global_needs_wider_lanes_than_local() {
        // Same lengths, same gaps: the global worst path digs far below
        // zero while local clamps at 0, so global's magnitude dominates.
        let nw = analyze(&parse_program(aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE).unwrap()).unwrap();
        let bind = GapBindings {
            gap_open: -12,
            gap_ext: -2,
        };
        let local = analyze_range(&alg1_spec(), bind, &BLOSUM62, 800, 800).unwrap();
        let global = analyze_range(&nw, bind, &BLOSUM62, 800, 800).unwrap();
        assert!(global.bounds.t_min < local.bounds.t_min);
        assert!(global.bounds.magnitude() > local.bounds.magnitude());
    }

    #[test]
    fn bad_bindings_propagate() {
        let err = analyze_range(
            &alg1_spec(),
            GapBindings {
                gap_open: -12,
                gap_ext: 1,
            },
            &BLOSUM62,
            100,
            100,
        )
        .unwrap_err();
        assert_eq!(err, BindError::NonNegativeExtension(1));
    }

    /// Cross-validation: actually run the bound configuration through
    /// the vector kernels and check the observed score sits inside the
    /// predicted interval.
    #[test]
    fn observed_scores_stay_inside_predicted_bounds() {
        use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
        use aalign_core::Aligner;

        let report = analyze_range(
            &alg1_spec(),
            GapBindings {
                gap_open: -12,
                gap_ext: -2,
            },
            &BLOSUM62,
            120,
            120,
        )
        .unwrap();
        let aligner = Aligner::new(report.config.clone());
        let mut rng = seeded_rng(7);
        let q = named_query(&mut rng, 100);
        for pair in [
            PairSpec::new(Level::Hi, Level::Hi),
            PairSpec::new(Level::Lo, Level::Lo),
        ] {
            let s = pair.generate(&mut rng, &q).subject;
            let score = aligner.align(&q, &s).unwrap().score as i64;
            assert!(
                (report.bounds.t_min..=report.bounds.t_max).contains(&score),
                "score {score} outside [{}, {}]",
                report.bounds.t_min,
                report.bounds.t_max
            );
        }
    }
}
