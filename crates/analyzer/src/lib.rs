//! # aalign-analyzer — static verification for AAlign kernels
//!
//! Three passes that check properties *before* anything runs:
//!
//! * [`range`] — interval arithmetic over the generalized recurrences
//!   (Eq. 2–6): given a [`KernelSpec`](aalign_codegen::KernelSpec),
//!   gap bindings, a substitution matrix and maximum sequence
//!   lengths, derive conservative bounds on every T/U/L cell, select
//!   the minimal safe lane width (i8/i16/i32), reject configurations
//!   where even i32 wraps, and report the bias/saturation constants
//!   the biased-unsigned kernels need. The same
//!   [`ScoreBounds`](aalign_core::ScoreBounds) analysis backs the
//!   runtime `Aligner` width policy, so what the analyzer predicts is
//!   what the kernels do.
//! * [`dataflow`] — a dependency-direction pass over the parsed AST
//!   proving the recurrences only read `(i-1, j)`, `(i, j-1)`,
//!   `(i-1, j-1)` — the legality condition for the paper's striped
//!   vectorizations (Sec. IV). Violations come back as span-carrying
//!   diagnostics pointing at the offending subscript.
//! * [`audit`] — an offline, text-level lint over the hand-written
//!   SIMD backends: every `unsafe` needs a `// SAFETY:` comment,
//!   intrinsic-using functions need a matching `#[target_feature]`
//!   (or the engine-method `#[inline(always)]` pattern), and
//!   per-backend unsafe counts are pinned to a checked-in baseline.
//! * [`concurrency`] — the atomics-discipline lint over the
//!   concurrent crates (`aalign-par`, `aalign-obs`): every atomic
//!   operation needs an `// ORDER:` justification, `SeqCst` must be
//!   argued for explicitly, `Relaxed` must not claim publication
//!   semantics, and the full atomics inventory (file, operation,
//!   ordering) is pinned to a checked-in baseline. The static proofs
//!   complement the loom model-checking suites, which explore
//!   interleavings but not memory orderings.
//!
//! * [`conformance`] — the kernel conformance prover: symbolic
//!   max-plus execution of the recurrence AST proving the
//!   Eq.(2)→Eq.(3–6) rewrite is score-preserving (gap-family
//!   unrolling, result-max completeness, wavefront legality), derived
//!   lemmas for the striped-permutation transform and the lazy-F
//!   correction bound (≤ P sweeps), and the `ScoreBounds`-conditioned
//!   premises under which the rescue ladder is bit-exact — each a
//!   machine-readable [`conformance::Obligation`] with caret
//!   diagnostics on failure. The pass also runs the
//!   bounded-exhaustive differential harness
//!   (`aalign_core::conformance`) and pins the obligation inventory
//!   plus harness coverage in `conformance_baseline.txt`.
//!
//! * [`certify`] — the saturation-certificate prover: interval
//!   abstract interpretation over the recurrence wavefronts proving —
//!   per (matrix, gap model, length bounds, lane width) — that every
//!   intermediate DP cell, *including the kernel's saturation-detection
//!   headroom*, stays strictly inside the saturating range, or a
//!   caret-diagnosed denial naming the violating recurrence term and
//!   the tightest length bound that would certify. The verdicts are
//!   the same [`aalign_core::certify::WidthCertificate`]s the runtime
//!   width selection consumes; the shipped inventory is pinned in
//!   `certify_baseline.txt`, and a seeded mutation self-test keeps
//!   the prover honest.
//!
//! The `aalign-analyzer` binary exposes the passes as `check`,
//! `range`, `audit`, `concurrency`, `conformance` and `certify`
//! subcommands (all support `--json` for machine-readable output);
//! each pass is also exercised as ordinary `#[test]`s so `cargo test`
//! runs the whole suite.

pub mod audit;
pub mod certify;
pub mod concurrency;
pub mod conformance;
pub mod dataflow;
pub mod json;
pub mod range;

pub use audit::{audit_dir, audit_source, AuditReport};
pub use certify::{
    analyze_certify, run_certify_pass, run_mutation_self_test, CertMutation, CertifyPass,
    CertifyReport, MutationVerdict,
};
pub use concurrency::{scan_dirs, scan_source, ConcurrencyReport};
pub use conformance::{
    prove_kernel, run_conformance_pass, verify_spec, ConformancePass, KernelProof, Obligation,
    ObligationStatus, ProveError,
};
pub use dataflow::{verify_dataflow, DataflowReport, Diagnostic};
pub use range::{analyze_range, RangeReport};
