//! `aalign-analyzer` — static kernel verification CLI.
//!
//! ```text
//! aalign-analyzer check  [FILE | --builtin NAME | --builtin all]
//! aalign-analyzer range  [FILE | --builtin NAME] --matrix blosum62|dna
//!                        --open N --ext N --max-query N --max-subject N
//! aalign-analyzer audit  [DIR] [--offline] [--print-baseline]
//! aalign-analyzer concurrency  [DIR...] [--print-baseline]
//! ```
//!
//! Exit codes: 0 = all checks pass, 1 = a pass rejected something,
//! 2 = usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use aalign_analyzer::audit::{audit_dir, default_vec_src_dir, VEC_BASELINE};
use aalign_analyzer::concurrency::{default_concurrency_dirs, scan_dirs, CONCURRENCY_BASELINE};
use aalign_analyzer::range::analyze_range;
use aalign_analyzer::verify_dataflow;
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::SubstMatrix;
use aalign_codegen::emit::GapBindings;
use aalign_codegen::{analyze, parse_program};

const USAGE: &str = "\
aalign-analyzer — static verification for AAlign kernels

USAGE:
    aalign-analyzer check  [FILE | --builtin NAME | --builtin all]
    aalign-analyzer range  [FILE | --builtin NAME] [--matrix blosum62|dna]
                           [--open N] [--ext N]
                           [--max-query N] [--max-subject N]
    aalign-analyzer audit  [DIR] [--offline] [--print-baseline]
    aalign-analyzer concurrency  [DIR...] [--print-baseline]

BUILTINS: sw-affine (alg1), nw-affine, sw-linear, nw-linear

`check` parses a kernel description, classifies it against the
generalized paradigm, and proves its dependency directions legal for
striped vectorization. `range` additionally binds gap penalties and a
matrix and reports score intervals and the minimal safe lane width.
`audit` lints the SIMD backends (SAFETY comments, target_feature
contracts, unsafe-count baseline); it reads only the local tree, so
--offline is accepted for CI clarity but changes nothing.
`concurrency` lints the concurrent crates' atomics discipline (ORDER
justifications, SeqCst/Relaxed rules, exact inventory baseline).";

fn builtin(name: &str) -> Option<(&'static str, &'static str)> {
    match name {
        "sw-affine" | "alg1" => Some(("sw-affine", aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE)),
        "nw-affine" => Some(("nw-affine", aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE)),
        "sw-linear" => Some(("sw-linear", aalign_codegen::SMITH_WATERMAN_LINEAR)),
        "nw-linear" => Some(("nw-linear", aalign_codegen::NEEDLEMAN_WUNSCH_LINEAR)),
        _ => None,
    }
}

const ALL_BUILTINS: [&str; 4] = ["sw-affine", "nw-affine", "sw-linear", "nw-linear"];

/// Resolve the common `[FILE | --builtin NAME]` source selector.
/// Returns (display name, source text) pairs.
fn resolve_sources(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut i = 0;
    let mut out = Vec::new();
    while i < args.len() {
        match args[i].as_str() {
            "--builtin" => {
                let name = args.get(i + 1).ok_or("--builtin needs a name (or `all`)")?;
                if name == "all" {
                    for b in ALL_BUILTINS {
                        let (label, src) = builtin(b).unwrap();
                        out.push((label.to_string(), src.to_string()));
                    }
                } else {
                    let (label, src) = builtin(name)
                        .ok_or_else(|| format!("unknown builtin `{name}` (try `all`)"))?;
                    out.push((label.to_string(), src.to_string()));
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            file => {
                let src = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                out.push((file.to_string(), src));
                i += 1;
            }
        }
    }
    if out.is_empty() {
        // Default: verify every builtin.
        for b in ALL_BUILTINS {
            let (label, src) = builtin(b).unwrap();
            out.push((label.to_string(), src.to_string()));
        }
    }
    Ok(out)
}

/// Parse + classify + dataflow-verify one kernel source. Prints
/// span-carrying diagnostics on failure.
fn check_one(name: &str, src: &str) -> bool {
    let prog = match parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            let span = e.span();
            let (line, col) = span.line_col(src);
            eprintln!("{name}: parse error: {e}\n  --> {line}:{col}");
            return false;
        }
    };
    let spec = match analyze(&prog) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{name}: paradigm classification failed:");
            eprintln!("{}", e.render(src));
            return false;
        }
    };
    match verify_dataflow(&prog) {
        Ok(report) => {
            println!(
                "{name}: OK — {} ({} tables, {} dependencies, all within the \
                 anti-diagonal wavefront)",
                spec.label(),
                report.tables.len(),
                report.deps.len()
            );
            true
        }
        Err(diags) => {
            eprintln!("{name}: dataflow verification FAILED:");
            for d in &diags {
                eprintln!("{}", d.render(src));
            }
            false
        }
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let sources = resolve_sources(args)?;
    let mut ok = true;
    for (name, src) in &sources {
        ok &= check_one(name, src);
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_range(args: &[String]) -> Result<ExitCode, String> {
    let mut matrix_name = "blosum62".to_string();
    let mut open = -12i32;
    let mut ext = -2i32;
    let mut max_query = 1024usize;
    let mut max_subject = 1024usize;
    let mut rest = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let take = |j: usize| -> Result<&String, String> {
            args.get(j)
                .ok_or_else(|| format!("{} needs a value", args[j - 1]))
        };
        match args[i].as_str() {
            "--matrix" => {
                matrix_name = take(i + 1)?.clone();
                i += 2;
            }
            "--open" => {
                open = take(i + 1)?.parse().map_err(|_| "--open: not an integer")?;
                i += 2;
            }
            "--ext" => {
                ext = take(i + 1)?.parse().map_err(|_| "--ext: not an integer")?;
                i += 2;
            }
            "--max-query" => {
                max_query = take(i + 1)?
                    .parse()
                    .map_err(|_| "--max-query: not a length")?;
                i += 2;
            }
            "--max-subject" => {
                max_subject = take(i + 1)?
                    .parse()
                    .map_err(|_| "--max-subject: not a length")?;
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }

    let dna;
    let matrix: &SubstMatrix = match matrix_name.as_str() {
        "blosum62" => &BLOSUM62,
        "dna" => {
            dna = SubstMatrix::dna(2, -3);
            &dna
        }
        other => return Err(format!("unknown matrix `{other}` (blosum62|dna)")),
    };

    let sources = resolve_sources(&rest)?;
    let mut ok = true;
    for (name, src) in &sources {
        if !check_one(name, src) {
            ok = false;
            continue;
        }
        let prog = parse_program(src).expect("checked above");
        let spec = analyze(&prog).expect("checked above");
        let bind = GapBindings {
            gap_open: open,
            gap_ext: ext,
        };
        match analyze_range(&spec, bind, matrix, max_query, max_subject) {
            Ok(report) => {
                println!("{report}");
                if report.overflows_i32() {
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("{name}: cannot bind gap constants: {e}");
                ok = false;
            }
        }
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_audit(args: &[String]) -> Result<ExitCode, String> {
    let mut dir: Option<PathBuf> = None;
    let mut print_baseline = false;
    for a in args {
        match a.as_str() {
            "--offline" => {} // the audit never touches the network; accepted for CI clarity
            "--print-baseline" => print_baseline = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => dir = Some(PathBuf::from(path)),
        }
    }
    let is_default = dir.is_none();
    let dir = dir.unwrap_or_else(default_vec_src_dir);
    let report = audit_dir(&dir).map_err(|e| format!("cannot audit {}: {e}", dir.display()))?;

    if print_baseline {
        print!("{}", report.baseline_text());
        return Ok(ExitCode::SUCCESS);
    }

    for f in &report.files {
        println!("{:14} {:3} unsafe", f.file, f.unsafe_count);
    }
    let mut ok = true;
    if !report.is_clean() {
        ok = false;
        eprintln!("\n{} finding(s):", report.findings.len());
        for f in &report.findings {
            eprintln!("  {f}");
        }
    }
    if is_default {
        let problems = report.check_baseline(VEC_BASELINE);
        if problems.is_empty() {
            println!("baseline: OK");
        } else {
            ok = false;
            eprintln!("\nbaseline violations:");
            for p in &problems {
                eprintln!("  {p}");
            }
        }
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_concurrency(args: &[String]) -> Result<ExitCode, String> {
    let mut dirs: Vec<(String, PathBuf)> = Vec::new();
    let mut print_baseline = false;
    for a in args {
        match a.as_str() {
            "--print-baseline" => print_baseline = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => {
                let p = PathBuf::from(path);
                let label = p
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("dir")
                    .to_string();
                dirs.push((label, p));
            }
        }
    }
    let is_default = dirs.is_empty();
    if is_default {
        dirs = default_concurrency_dirs();
    }
    let report = scan_dirs(&dirs).map_err(|e| format!("cannot scan: {e}"))?;

    if print_baseline {
        print!("{}", report.baseline_text());
        return Ok(ExitCode::SUCCESS);
    }

    println!(
        "{} atomic site(s) across {} dir(s)",
        report.sites.len(),
        dirs.len()
    );
    print!("{}", report.baseline_text());
    let mut ok = true;
    if !report.is_clean() {
        ok = false;
        eprintln!("\n{} finding(s):", report.findings.len());
        for f in &report.findings {
            eprintln!("  {f}");
        }
    }
    if is_default {
        let problems = report.check_baseline(CONCURRENCY_BASELINE);
        if problems.is_empty() {
            println!("baseline: OK");
        } else {
            ok = false;
            eprintln!("\nbaseline drift:");
            for p in &problems {
                eprintln!("  {p}");
            }
        }
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "check" => cmd_check(rest),
        "range" => cmd_range(rest),
        "audit" => cmd_audit(rest),
        "concurrency" => cmd_concurrency(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
