//! `aalign-analyzer` — static kernel verification CLI.
//!
//! ```text
//! aalign-analyzer check  [FILE | --builtin NAME | --builtin all]
//! aalign-analyzer range  [FILE | --builtin NAME] --matrix blosum62|dna
//!                        --open N --ext N --max-query N --max-subject N
//! aalign-analyzer audit  [DIR] [--offline] [--print-baseline]
//! aalign-analyzer concurrency  [DIR...] [--print-baseline]
//! aalign-analyzer conformance  [FILE | --builtin NAME]
//!                              [--print-baseline] [--mutate SEED]
//! aalign-analyzer certify  [FILE | --builtin NAME] [--matrix blosum62|dna]
//!                          [--open N] [--ext N]
//!                          [--max-query N] [--max-subject N]
//!                          [--print-baseline] [--mutate SEED]
//! ```
//!
//! Every subcommand accepts `--json` for machine-readable output
//! (stable schema: a single object with `"pass"` and `"ok"` fields
//! plus pass-specific payload).
//!
//! Exit codes: 0 = all checks pass, 1 = a pass rejected something,
//! 2 = usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use aalign_analyzer::audit::{audit_dir, default_vec_src_dir, VEC_BASELINE};
use aalign_analyzer::certify::{
    analyze_certify, run_certify_pass, run_mutation_self_test, CertMutation, CertifyReport,
    CERTIFY_BASELINE,
};
use aalign_analyzer::concurrency::{default_concurrency_dirs, scan_dirs, CONCURRENCY_BASELINE};
use aalign_analyzer::conformance::{run_conformance_pass, ConformancePass, CONFORMANCE_BASELINE};
use aalign_analyzer::range::analyze_range;
use aalign_analyzer::{json, verify_dataflow, DataflowReport};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::SubstMatrix;
use aalign_codegen::emit::GapBindings;
use aalign_codegen::{analyze, parse_program, KernelSpec};
use aalign_core::conformance::{run_harness, ConformanceReport, HarnessOptions, Mutation};

const USAGE: &str = "\
aalign-analyzer — static verification for AAlign kernels

USAGE:
    aalign-analyzer check  [FILE | --builtin NAME | --builtin all]
    aalign-analyzer range  [FILE | --builtin NAME] [--matrix blosum62|dna]
                           [--open N] [--ext N]
                           [--max-query N] [--max-subject N]
    aalign-analyzer audit  [DIR] [--offline] [--print-baseline]
    aalign-analyzer concurrency  [DIR...] [--print-baseline]
    aalign-analyzer conformance  [FILE | --builtin NAME | --builtin all]
                                 [--print-baseline] [--mutate SEED]
    aalign-analyzer certify  [FILE | --builtin NAME] [--matrix blosum62|dna]
                             [--open N] [--ext N]
                             [--max-query N] [--max-subject N]
                             [--print-baseline] [--mutate SEED]

    All subcommands accept --json for machine-readable output.

BUILTINS: sw-affine (alg1), nw-affine, sw-linear, nw-linear

`check` parses a kernel description, classifies it against the
generalized paradigm, and proves its dependency directions legal for
striped vectorization. `range` additionally binds gap penalties and a
matrix and reports score intervals and the minimal safe lane width.
`audit` lints the SIMD backends (SAFETY comments, target_feature
contracts, unsafe-count baseline); it reads only the local tree, so
--offline is accepted for CI clarity but changes nothing.
`concurrency` lints the concurrent crates' atomics discipline (ORDER
justifications, SeqCst/Relaxed rules, exact inventory baseline).
`conformance` proves the Eq.(2) equivalence obligations for each
kernel symbolically, then runs the bounded-exhaustive differential
harness against paradigm_dp; --mutate SEED perturbs one max/gap term
and *requires* the harness to catch it (the self-test has teeth).
`certify` runs the saturation-certificate prover: with no source it
proves the shipped configuration inventory (pinned baseline); with a
source and gap/matrix/length flags it certifies that one config per
lane width, rendering caret diagnostics for denials; --mutate SEED
perturbs every certified config and requires the prover to deny the
mutant at the previously granted width.";

fn builtin(name: &str) -> Option<(&'static str, &'static str)> {
    match name {
        "sw-affine" | "alg1" => Some(("sw-affine", aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE)),
        "nw-affine" => Some(("nw-affine", aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE)),
        "sw-linear" => Some(("sw-linear", aalign_codegen::SMITH_WATERMAN_LINEAR)),
        "nw-linear" => Some(("nw-linear", aalign_codegen::NEEDLEMAN_WUNSCH_LINEAR)),
        _ => None,
    }
}

const ALL_BUILTINS: [&str; 4] = ["sw-affine", "nw-affine", "sw-linear", "nw-linear"];

/// Resolve the common `[FILE | --builtin NAME]` source selector.
/// Returns (display name, source text) pairs, and whether the default
/// set was used (baselines are only checked against defaults).
fn resolve_sources(args: &[String]) -> Result<(Vec<(String, String)>, bool), String> {
    let mut i = 0;
    let mut out = Vec::new();
    while i < args.len() {
        match args[i].as_str() {
            "--builtin" => {
                let name = args.get(i + 1).ok_or("--builtin needs a name (or `all`)")?;
                if name == "all" {
                    for b in ALL_BUILTINS {
                        let (label, src) = builtin(b).unwrap();
                        out.push((label.to_string(), src.to_string()));
                    }
                } else {
                    let (label, src) = builtin(name)
                        .ok_or_else(|| format!("unknown builtin `{name}` (try `all`)"))?;
                    out.push((label.to_string(), src.to_string()));
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            file => {
                let src = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                out.push((file.to_string(), src));
                i += 1;
            }
        }
    }
    let is_default = out.is_empty();
    if is_default {
        // Default: verify every builtin.
        for b in ALL_BUILTINS {
            let (label, src) = builtin(b).unwrap();
            out.push((label.to_string(), src.to_string()));
        }
    }
    Ok((out, is_default))
}

/// Parse + classify + dataflow-verify one kernel source. `Err` carries
/// the full rendered diagnostic.
fn check_kernel(name: &str, src: &str) -> Result<(KernelSpec, DataflowReport), String> {
    let prog = parse_program(src).map_err(|e| {
        let span = e.span();
        let (line, col) = span.line_col(src);
        format!("{name}: parse error: {e}\n  --> {line}:{col}")
    })?;
    let spec = analyze(&prog)
        .map_err(|e| format!("{name}: paradigm classification failed:\n{}", e.render(src)))?;
    match verify_dataflow(&prog) {
        Ok(report) => Ok((spec, report)),
        Err(diags) => {
            let mut msg = format!("{name}: dataflow verification FAILED:");
            for d in &diags {
                msg.push('\n');
                msg.push_str(&d.render(src));
            }
            Err(msg)
        }
    }
}

/// Text-mode wrapper: prints the outcome, returns pass/fail.
fn check_one(name: &str, src: &str) -> bool {
    match check_kernel(name, src) {
        Ok((spec, report)) => {
            println!(
                "{name}: OK — {} ({} tables, {} dependencies, all within the \
                 anti-diagonal wavefront)",
                spec.label(),
                report.tables.len(),
                report.deps.len()
            );
            true
        }
        Err(msg) => {
            eprintln!("{msg}");
            false
        }
    }
}

fn exit(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_check(args: &[String], as_json: bool) -> Result<ExitCode, String> {
    let (sources, _) = resolve_sources(args)?;
    let mut ok = true;
    let mut kernels = Vec::new();
    for (name, src) in &sources {
        if as_json {
            let obj = match check_kernel(name, src) {
                Ok((spec, report)) => json::Obj::new()
                    .str("name", name)
                    .bool("ok", true)
                    .str("label", &spec.label())
                    .num("tables", report.tables.len() as i64)
                    .num("dependencies", report.deps.len() as i64),
                Err(msg) => {
                    ok = false;
                    json::Obj::new()
                        .str("name", name)
                        .bool("ok", false)
                        .str("error", &msg)
                }
            };
            kernels.push(obj.build());
        } else {
            ok &= check_one(name, src);
        }
    }
    if as_json {
        println!(
            "{}",
            json::Obj::new()
                .str("pass", "check")
                .bool("ok", ok)
                .raw("kernels", &json::array(kernels))
                .build()
        );
    }
    Ok(exit(ok))
}

fn cmd_range(args: &[String], as_json: bool) -> Result<ExitCode, String> {
    let mut matrix_name = "blosum62".to_string();
    let mut open = -12i32;
    let mut ext = -2i32;
    let mut max_query = 1024usize;
    let mut max_subject = 1024usize;
    let mut rest = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let take = |j: usize| -> Result<&String, String> {
            args.get(j)
                .ok_or_else(|| format!("{} needs a value", args[j - 1]))
        };
        match args[i].as_str() {
            "--matrix" => {
                matrix_name = take(i + 1)?.clone();
                i += 2;
            }
            "--open" => {
                open = take(i + 1)?.parse().map_err(|_| "--open: not an integer")?;
                i += 2;
            }
            "--ext" => {
                ext = take(i + 1)?.parse().map_err(|_| "--ext: not an integer")?;
                i += 2;
            }
            "--max-query" => {
                max_query = take(i + 1)?
                    .parse()
                    .map_err(|_| "--max-query: not a length")?;
                i += 2;
            }
            "--max-subject" => {
                max_subject = take(i + 1)?
                    .parse()
                    .map_err(|_| "--max-subject: not a length")?;
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }

    let dna;
    let matrix: &SubstMatrix = match matrix_name.as_str() {
        "blosum62" => &BLOSUM62,
        "dna" => {
            dna = SubstMatrix::dna(2, -3);
            &dna
        }
        other => return Err(format!("unknown matrix `{other}` (blosum62|dna)")),
    };

    let (sources, _) = resolve_sources(&rest)?;
    let mut ok = true;
    let mut kernels = Vec::new();
    for (name, src) in &sources {
        let checked = check_kernel(name, src);
        let (spec, _) = match checked {
            Ok(pair) => pair,
            Err(msg) => {
                ok = false;
                if as_json {
                    kernels.push(
                        json::Obj::new()
                            .str("name", name)
                            .bool("ok", false)
                            .str("error", &msg)
                            .build(),
                    );
                } else {
                    eprintln!("{msg}");
                }
                continue;
            }
        };
        let bind = GapBindings {
            gap_open: open,
            gap_ext: ext,
        };
        match analyze_range(&spec, bind, matrix, max_query, max_subject) {
            Ok(report) => {
                let fits = !report.overflows_i32();
                ok &= fits;
                if as_json {
                    kernels.push(
                        json::Obj::new()
                            .str("name", name)
                            .bool("ok", fits)
                            .str("report", &report.to_string())
                            .build(),
                    );
                } else {
                    println!("{report}");
                }
            }
            Err(e) => {
                ok = false;
                if as_json {
                    kernels.push(
                        json::Obj::new()
                            .str("name", name)
                            .bool("ok", false)
                            .str("error", &format!("cannot bind gap constants: {e}"))
                            .build(),
                    );
                } else {
                    eprintln!("{name}: cannot bind gap constants: {e}");
                }
            }
        }
    }
    if as_json {
        println!(
            "{}",
            json::Obj::new()
                .str("pass", "range")
                .bool("ok", ok)
                .raw("kernels", &json::array(kernels))
                .build()
        );
    }
    Ok(exit(ok))
}

fn cmd_audit(args: &[String], as_json: bool) -> Result<ExitCode, String> {
    let mut dir: Option<PathBuf> = None;
    let mut print_baseline = false;
    for a in args {
        match a.as_str() {
            "--offline" => {} // the audit never touches the network; accepted for CI clarity
            "--print-baseline" => print_baseline = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => dir = Some(PathBuf::from(path)),
        }
    }
    let is_default = dir.is_none();
    let dir = dir.unwrap_or_else(default_vec_src_dir);
    let report = audit_dir(&dir).map_err(|e| format!("cannot audit {}: {e}", dir.display()))?;

    if print_baseline {
        print!("{}", report.baseline_text());
        return Ok(ExitCode::SUCCESS);
    }

    let mut ok = report.is_clean();
    let baseline_problems = if is_default {
        report.check_baseline(VEC_BASELINE)
    } else {
        Vec::new()
    };
    ok &= baseline_problems.is_empty();

    if as_json {
        let files = report.files.iter().map(|f| {
            json::Obj::new()
                .str("file", &f.file)
                .num("unsafe", f.unsafe_count as i64)
                .build()
        });
        let findings: Vec<String> = report
            .findings
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        println!(
            "{}",
            json::Obj::new()
                .str("pass", "audit")
                .bool("ok", ok)
                .raw("files", &json::array(files))
                .raw(
                    "findings",
                    &json::string_array(findings.iter().map(String::as_str))
                )
                .raw(
                    "baseline_problems",
                    &json::string_array(baseline_problems.iter().map(String::as_str))
                )
                .build()
        );
        return Ok(exit(ok));
    }

    for f in &report.files {
        println!("{:14} {:3} unsafe", f.file, f.unsafe_count);
    }
    if !report.is_clean() {
        eprintln!("\n{} finding(s):", report.findings.len());
        for f in &report.findings {
            eprintln!("  {f}");
        }
    }
    if is_default {
        if baseline_problems.is_empty() {
            println!("baseline: OK");
        } else {
            eprintln!("\nbaseline violations:");
            for p in &baseline_problems {
                eprintln!("  {p}");
            }
        }
    }
    Ok(exit(ok))
}

fn cmd_concurrency(args: &[String], as_json: bool) -> Result<ExitCode, String> {
    let mut dirs: Vec<(String, PathBuf)> = Vec::new();
    let mut print_baseline = false;
    for a in args {
        match a.as_str() {
            "--print-baseline" => print_baseline = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => {
                let p = PathBuf::from(path);
                let label = p
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("dir")
                    .to_string();
                dirs.push((label, p));
            }
        }
    }
    let is_default = dirs.is_empty();
    if is_default {
        dirs = default_concurrency_dirs();
    }
    let report = scan_dirs(&dirs).map_err(|e| format!("cannot scan: {e}"))?;

    if print_baseline {
        print!("{}", report.baseline_text());
        return Ok(ExitCode::SUCCESS);
    }

    let mut ok = report.is_clean();
    let baseline_problems = if is_default {
        report.check_baseline(CONCURRENCY_BASELINE)
    } else {
        Vec::new()
    };
    ok &= baseline_problems.is_empty();

    if as_json {
        let findings: Vec<String> = report
            .findings
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        println!(
            "{}",
            json::Obj::new()
                .str("pass", "concurrency")
                .bool("ok", ok)
                .num("sites", report.sites.len() as i64)
                .raw(
                    "findings",
                    &json::string_array(findings.iter().map(String::as_str))
                )
                .raw(
                    "baseline_problems",
                    &json::string_array(baseline_problems.iter().map(String::as_str))
                )
                .build()
        );
        return Ok(exit(ok));
    }

    println!(
        "{} atomic site(s) across {} dir(s)",
        report.sites.len(),
        dirs.len()
    );
    print!("{}", report.baseline_text());
    if !report.is_clean() {
        eprintln!("\n{} finding(s):", report.findings.len());
        for f in &report.findings {
            eprintln!("  {f}");
        }
    }
    if is_default {
        if baseline_problems.is_empty() {
            println!("baseline: OK");
        } else {
            eprintln!("\nbaseline drift:");
            for p in &baseline_problems {
                eprintln!("  {p}");
            }
        }
    }
    Ok(exit(ok))
}

/// Render one harness report as a JSON object string.
fn harness_json(h: &ConformanceReport) -> String {
    let configs = h.configs.iter().map(|c| {
        let violations = json::string_array(c.violations.iter().map(String::as_str));
        let mismatches: Vec<String> = c
            .mismatches
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        json::Obj::new()
            .str("config", &c.config)
            .num("pairs", c.pairs as i64)
            .num("mismatches", c.mismatch_count as i64)
            .raw(
                "mismatch_samples",
                &json::string_array(mismatches.iter().map(String::as_str)),
            )
            .raw("violations", &violations)
            .build()
    });
    let mut obj = json::Obj::new()
        .bool("bit_exact", h.is_bit_exact())
        .num("checks", h.total_checks() as i64)
        .num("mismatches", h.total_mismatches() as i64)
        .raw("configs", &json::array(configs));
    if let Some(m) = &h.mutation {
        obj = obj.str("mutation", m);
    }
    obj.build()
}

/// Render the proof obligations as JSON.
fn proofs_json(pass: &ConformancePass) -> String {
    let kernels = pass.proofs.iter().map(|p| {
        let obligations = p.obligations.iter().map(|o| {
            json::Obj::new()
                .str("id", o.id)
                .str("status", o.status.word())
                .str("claim", &o.claim)
                .raw(
                    "premises",
                    &json::string_array(o.premises.iter().map(String::as_str)),
                )
                .str("detail", &o.detail)
                .build()
        });
        json::Obj::new()
            .str("name", &p.kernel)
            .str("label", &p.label)
            .bool("discharged", p.is_discharged())
            .raw("obligations", &json::array(obligations))
            .build()
    });
    json::array(kernels)
}

fn cmd_conformance(args: &[String], as_json: bool) -> Result<ExitCode, String> {
    let mut print_baseline = false;
    let mut mutate: Option<u64> = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--print-baseline" => {
                print_baseline = true;
                i += 1;
            }
            "--mutate" => {
                let seed = args.get(i + 1).ok_or("--mutate needs a seed (u64)")?;
                mutate = Some(
                    seed.parse()
                        .map_err(|_| format!("--mutate: `{seed}` is not a u64 seed"))?,
                );
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    let (sources, is_default) = resolve_sources(&rest)?;

    // Mutation self-test: perturb one max/gap term on the kernel side
    // and *require* the harness to catch it.
    if let Some(seed) = mutate {
        let mutation = Mutation::from_seed(seed);
        let opts = HarnessOptions {
            mutation: Some(mutation),
            ..HarnessOptions::ci()
        };
        let report = run_harness(&opts);
        let caught = !report.is_bit_exact();
        if as_json {
            println!(
                "{}",
                json::Obj::new()
                    .str("pass", "conformance")
                    .bool("ok", caught)
                    .str("mode", "mutation-self-test")
                    .num("seed", seed as i64)
                    .str("mutation", mutation.name())
                    .bool("caught", caught)
                    .raw("harness", &harness_json(&report))
                    .build()
            );
        } else {
            println!("{}", report.summary());
            if caught {
                println!(
                    "mutation `{}` (seed {seed}): CAUGHT — {} mismatch(es); the harness has teeth",
                    mutation.name(),
                    report.total_mismatches()
                );
            } else {
                eprintln!(
                    "mutation `{}` (seed {seed}): NOT caught — the harness is blind to this \
                     perturbation",
                    mutation.name()
                );
            }
        }
        return Ok(exit(caught));
    }

    let pass = match run_conformance_pass(&sources) {
        Ok(p) => p,
        Err((name, e)) => return Err(format!("{name}: {e}")),
    };

    if print_baseline {
        print!("{}", pass.baseline_text());
        return Ok(ExitCode::SUCCESS);
    }

    let mut ok = pass.is_clean();
    let baseline_problems = if is_default {
        pass.check_baseline(CONFORMANCE_BASELINE)
    } else {
        Vec::new()
    };
    ok &= baseline_problems.is_empty();

    if as_json {
        println!(
            "{}",
            json::Obj::new()
                .str("pass", "conformance")
                .bool("ok", ok)
                .raw("kernels", &proofs_json(&pass))
                .raw("harness", &harness_json(&pass.harness))
                .raw(
                    "baseline_problems",
                    &json::string_array(baseline_problems.iter().map(String::as_str))
                )
                .build()
        );
        return Ok(exit(ok));
    }

    for (proof, (_, src)) in pass.proofs.iter().zip(&sources) {
        println!("{} ({}):", proof.kernel, proof.label);
        for o in &proof.obligations {
            for (k, line) in o.render(src).lines().enumerate() {
                println!("  {}{line}", if k == 0 { "" } else { "  " });
            }
        }
    }
    println!("{}", pass.harness.summary());
    for c in &pass.harness.configs {
        for m in &c.mismatches {
            eprintln!("  mismatch: {m}");
        }
        for v in &c.violations {
            eprintln!("  violation: {v}");
        }
    }
    if is_default {
        if baseline_problems.is_empty() {
            println!("baseline: OK");
        } else {
            eprintln!("\nbaseline drift:");
            for p in &baseline_problems {
                eprintln!("  {p}");
            }
        }
    }
    println!(
        "conformance: {}",
        if ok {
            "all obligations discharged"
        } else {
            "FAILED"
        }
    );
    Ok(exit(ok))
}

/// Render one certify report as a JSON object string.
fn certify_json(r: &CertifyReport, src: Option<&str>) -> String {
    let certs = r.certificates.iter().map(|c| {
        let mut obj = json::Obj::new()
            .num("lane_bits", i64::from(c.lane_bits))
            .bool("granted", c.granted)
            .num("fingerprint", c.fingerprint as i64)
            .str("summary", &c.summary())
            .num("t_lo", c.bounds.t_lo)
            .num("t_hi", c.bounds.t_hi)
            .num("ul_lo", c.bounds.ul_lo)
            .num("ul_hi", c.bounds.ul_hi)
            .num("headroom", c.bounds.headroom);
        if let Some(d) = &c.denial {
            let mut den = json::Obj::new()
                .str("term", d.term.name())
                .str("table", d.table)
                .num("wavefront", d.wavefront as i64)
                .num("value", d.value)
                .num("limit", d.limit);
            if let Some(len) = d.max_safe_len {
                den = den.num("max_safe_len", len as i64);
            }
            if let Some(w) = &d.witness {
                den = den.raw(
                    "witness",
                    &json::Obj::new()
                        .str("query_letter", &(w.query_letter as char).to_string())
                        .str("subject_letter", &(w.subject_letter as char).to_string())
                        .num("len", w.len as i64)
                        .num("min_score", w.min_score)
                        .build(),
                );
            }
            obj = obj.raw("denial", &den.build());
        }
        obj.build()
    });
    let mut obj = json::Obj::new()
        .str("label", &r.label)
        .str("matrix", &r.matrix)
        .num("max_query", r.max_query as i64)
        .num("max_subject", r.max_subject as i64)
        .bool("certifiable", r.is_certifiable())
        .raw("certificates", &json::array(certs));
    if let Some(bits) = r.narrowest_granted() {
        obj = obj.num("narrowest_granted", i64::from(bits));
    }
    if let Some(src) = src {
        obj = obj.str("report", &r.render(src));
    }
    obj.build()
}

fn cmd_certify(args: &[String], as_json: bool) -> Result<ExitCode, String> {
    let mut matrix_name = "blosum62".to_string();
    let mut open = -12i32;
    let mut ext = -2i32;
    let mut max_query = 1024usize;
    let mut max_subject = 1024usize;
    let mut print_baseline = false;
    let mut mutate: Option<u64> = None;
    let mut rest = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let take = |j: usize| -> Result<&String, String> {
            args.get(j)
                .ok_or_else(|| format!("{} needs a value", args[j - 1]))
        };
        match args[i].as_str() {
            "--matrix" => {
                matrix_name = take(i + 1)?.clone();
                i += 2;
            }
            "--open" => {
                open = take(i + 1)?.parse().map_err(|_| "--open: not an integer")?;
                i += 2;
            }
            "--ext" => {
                ext = take(i + 1)?.parse().map_err(|_| "--ext: not an integer")?;
                i += 2;
            }
            "--max-query" => {
                max_query = take(i + 1)?
                    .parse()
                    .map_err(|_| "--max-query: not a length")?;
                i += 2;
            }
            "--max-subject" => {
                max_subject = take(i + 1)?
                    .parse()
                    .map_err(|_| "--max-subject: not a length")?;
                i += 2;
            }
            "--print-baseline" => {
                print_baseline = true;
                i += 1;
            }
            "--mutate" => {
                let seed = take(i + 1)?;
                mutate = Some(
                    seed.parse()
                        .map_err(|_| format!("--mutate: `{seed}` is not a u64 seed"))?,
                );
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }

    // Mutation self-test: perturb every certified shipped config and
    // *require* the prover to deny the mutant.
    if let Some(seed) = mutate {
        let mutation = CertMutation::from_seed(seed);
        let verdicts = run_mutation_self_test(mutation).map_err(|e| e.to_string())?;
        let ok = !verdicts.is_empty() && verdicts.iter().all(|v| v.rejected);
        if as_json {
            let rows = verdicts.iter().map(|v| {
                json::Obj::new()
                    .str("label", &v.label)
                    .str("matrix", &v.matrix)
                    .num("lane_bits", i64::from(v.lane_bits))
                    .bool("rejected", v.rejected)
                    .build()
            });
            println!(
                "{}",
                json::Obj::new()
                    .str("pass", "certify")
                    .bool("ok", ok)
                    .str("mode", "mutation-self-test")
                    .num("seed", seed as i64)
                    .str("mutation", mutation.name())
                    .raw("verdicts", &json::array(rows))
                    .build()
            );
        } else {
            for v in &verdicts {
                println!(
                    "mutation `{}` on {} vs {} at i{}: {}",
                    mutation.name(),
                    v.label,
                    v.matrix,
                    v.lane_bits,
                    if v.rejected {
                        "REJECTED (prover has teeth)"
                    } else {
                        "granted — the prover is blind to this perturbation"
                    }
                );
            }
        }
        return Ok(exit(ok));
    }

    // Ad-hoc mode: a source selector plus config flags certifies one
    // configuration. Default mode proves the shipped inventory and
    // checks the pinned baseline.
    if !rest.is_empty() {
        let dna;
        let matrix: &SubstMatrix = match matrix_name.as_str() {
            "blosum62" => &BLOSUM62,
            "dna" => {
                dna = SubstMatrix::dna(2, -3);
                &dna
            }
            other => return Err(format!("unknown matrix `{other}` (blosum62|dna)")),
        };
        let (sources, _) = resolve_sources(&rest)?;
        let mut ok = true;
        let mut kernels = Vec::new();
        for (name, src) in &sources {
            let (spec, _) = match check_kernel(name, src) {
                Ok(pair) => pair,
                Err(msg) => {
                    ok = false;
                    if as_json {
                        kernels.push(
                            json::Obj::new()
                                .str("name", name)
                                .bool("ok", false)
                                .str("error", &msg)
                                .build(),
                        );
                    } else {
                        eprintln!("{msg}");
                    }
                    continue;
                }
            };
            let bind = GapBindings {
                gap_open: open,
                gap_ext: ext,
            };
            match analyze_certify(&spec, bind, matrix, max_query, max_subject) {
                Ok(report) => {
                    ok &= report.is_certifiable();
                    if as_json {
                        kernels.push(certify_json(&report, Some(src)));
                    } else {
                        println!("{}", report.render(src));
                    }
                }
                Err(e) => {
                    ok = false;
                    if as_json {
                        kernels.push(
                            json::Obj::new()
                                .str("name", name)
                                .bool("ok", false)
                                .str("error", &format!("cannot bind gap constants: {e}"))
                                .build(),
                        );
                    } else {
                        eprintln!("{name}: cannot bind gap constants: {e}");
                    }
                }
            }
        }
        if as_json {
            println!(
                "{}",
                json::Obj::new()
                    .str("pass", "certify")
                    .bool("ok", ok)
                    .raw("kernels", &json::array(kernels))
                    .build()
            );
        }
        return Ok(exit(ok));
    }

    let pass = run_certify_pass().map_err(|e| e.to_string())?;

    if print_baseline {
        print!("{}", pass.baseline_text());
        return Ok(ExitCode::SUCCESS);
    }

    let mut ok = pass.is_certified();
    let baseline_problems = pass.check_baseline(CERTIFY_BASELINE);
    ok &= baseline_problems.is_empty();

    if as_json {
        let reports = pass.reports.iter().map(|r| certify_json(r, None));
        println!(
            "{}",
            json::Obj::new()
                .str("pass", "certify")
                .bool("ok", ok)
                .raw("configs", &json::array(reports))
                .raw(
                    "baseline_problems",
                    &json::string_array(baseline_problems.iter().map(String::as_str))
                )
                .build()
        );
        return Ok(exit(ok));
    }

    for (report, ship) in pass
        .reports
        .iter()
        .zip(aalign_analyzer::certify::shipped_configs())
    {
        println!("{}\n", report.render(ship.source));
    }
    if baseline_problems.is_empty() {
        println!("baseline: OK");
    } else {
        eprintln!("baseline drift:");
        for p in &baseline_problems {
            eprintln!("  {p}");
        }
    }
    println!(
        "certify: {}",
        if ok {
            "every shipped configuration has a proven rescue-free width"
        } else {
            "FAILED"
        }
    );
    Ok(exit(ok))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "check" => cmd_check(rest, as_json),
        "range" => cmd_range(rest, as_json),
        "audit" => cmd_audit(rest, as_json),
        "concurrency" => cmd_concurrency(rest, as_json),
        "conformance" => cmd_conformance(rest, as_json),
        "certify" => cmd_certify(rest, as_json),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
