//! Saturation-certificate prover front end (pass 6).
//!
//! A spec-driven front end over the interval abstract interpretation
//! in [`mod@aalign_core::certify`]: bind a [`KernelSpec`]'s symbolic gap
//! constants, attach a matrix and maximum sequence lengths, and — per
//! lane width — either *prove* that every intermediate DP cell
//! (including the kernel's saturation-detection headroom) stays
//! strictly inside the saturating range, or report the first abstract
//! wavefront cell that can overflow, with a caret diagnostic pointing
//! at the violating recurrence term in the kernel source and the
//! tightest length bound that would certify.
//!
//! The verdicts are the same [`WidthCertificate`]s the runtime
//! [`Aligner`](aalign_core::Aligner) consumes for width selection, so
//! what this pass certifies is exactly what the kernels run. Three
//! guards keep the prover honest:
//!
//! * the certificate inventory over the shipped configurations is
//!   pinned in `certify_baseline.txt` (same exact-pin discipline as
//!   the conformance and atomics baselines);
//! * a seeded mutation self-test ([`CertMutation`]) perturbs a
//!   certified configuration (matrix entry at the lane cap, scaled
//!   entries, blown-up lengths, extreme gap extension) and *requires*
//!   the prover to deny the mutant at the previously granted width;
//! * the differential gate in `aalign-par` runs searches at certified
//!   widths and asserts the rescue ladder never fires.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use aalign_bio::SubstMatrix;
use aalign_codegen::ast::Span;
use aalign_codegen::emit::GapBindings;
use aalign_codegen::interpret::BindError;
use aalign_codegen::{analyze, parse_program, spec_to_config, KernelSpec};
use aalign_core::certify::{certify, lane_cap, CertTerm, WidthCertificate};
use aalign_core::{AlignConfig, GapModel};

/// The result of the certify pass for one kernel configuration: one
/// certificate per lane width, plus everything needed to render
/// source-anchored diagnostics.
#[derive(Debug, Clone)]
pub struct CertifyReport {
    /// Kernel label (`sw-aff`, `nw-lin`, …).
    pub label: String,
    /// Matrix name the proof ran with.
    pub matrix: String,
    /// Assumed maximum query length.
    pub max_query: usize,
    /// Assumed maximum subject length.
    pub max_subject: usize,
    /// One certificate per lane width, ascending (i8, i16, i32).
    pub certificates: Vec<WidthCertificate>,
    /// The bound configuration — fingerprint-compatible with the
    /// runtime aligner's certificate store.
    pub config: AlignConfig,
}

impl CertifyReport {
    /// Narrowest granted lane width, or `None` when every width is
    /// denied (the configuration cannot run rescue-free at all).
    pub fn narrowest_granted(&self) -> Option<u32> {
        self.certificates
            .iter()
            .find(|c| c.granted)
            .map(|c| c.lane_bits)
    }

    /// True when at least one width is proven rescue-free.
    pub fn is_certifiable(&self) -> bool {
        self.narrowest_granted().is_some()
    }

    /// Render the report against the kernel source: per-width
    /// verdicts, and for each denial a caret diagnostic at the
    /// violating recurrence term plus the tightest certifying length.
    pub fn render(&self, src: &str) -> String {
        let mut out = format!(
            "width certification: {} vs {} (query ≤ {}, subject ≤ {})\n",
            self.label, self.matrix, self.max_query, self.max_subject
        );
        for cert in &self.certificates {
            let b = &cert.bounds;
            if cert.granted {
                let _ = writeln!(
                    out,
                    "  i{:<2} GRANTED  T ∈ [{}, {}], U/L ∈ [{}, {}], margin {} below cap {}",
                    cert.lane_bits,
                    b.t_lo,
                    b.t_hi,
                    b.ul_lo,
                    b.ul_hi,
                    lane_cap(cert.lane_bits) - b.headroom - b.t_hi.max(b.ul_hi),
                    lane_cap(cert.lane_bits),
                );
                continue;
            }
            let d = cert.denial.as_ref().expect("denied without a denial");
            let _ = writeln!(
                out,
                "  i{:<2} DENIED   {} cell can reach {} past limit {} at wavefront d={} \
                 ({} term)",
                cert.lane_bits,
                d.table,
                d.value,
                d.limit,
                d.wavefront,
                d.term.name(),
            );
            match d.max_safe_len {
                Some(len) => {
                    let _ = writeln!(
                        out,
                        "       tightest certifying bound: uniform length ≤ {len}"
                    );
                }
                None => {
                    let _ = writeln!(out, "       no length bound certifies this width");
                }
            }
            if let Some(w) = &d.witness {
                let _ = writeln!(
                    out,
                    "       witness: {}×'{}' vs {}×'{}' scores ≥ {}",
                    w.len, w.query_letter as char, w.len, w.subject_letter as char, w.min_score
                );
            }
            if let Some(span) = term_anchor(src, d.term) {
                out.push_str(&render_caret(src, span, d.term.name()));
                out.push('\n');
            }
        }
        match self.narrowest_granted() {
            Some(bits) => {
                let _ = write!(out, "  => narrowest certified width: i{bits}");
            }
            None => {
                let _ = write!(out, "  => NO width is provably rescue-free");
            }
        }
        out
    }
}

/// Locate the source anchor for a violating recurrence term: the
/// byte span of the expression the abstract interpreter blames.
fn term_anchor(src: &str, term: CertTerm) -> Option<Span> {
    let find = |needle: &str| -> Option<Span> {
        src.find(needle).map(|at| Span::new(at, at + needle.len()))
    };
    match term {
        CertTerm::Diag => find("T[i-1][j-1]"),
        // The boundary ramp is the global-init gap expression when the
        // kernel has one; otherwise blame the gap-open site the ramp
        // is built from.
        CertTerm::BoundaryRamp => find("GAP_OPEN + (i - 1) * GAP_EXT").or_else(|| find("GAP_OPEN")),
        CertTerm::GapOpen => find("GAP_OPEN"),
        CertTerm::GapExtend => find("GAP_EXT"),
        // The `0` operand of the local max.
        CertTerm::LocalZero => find("max(0").map(|s| Span::new(s.start + 4, s.start + 5)),
    }
}

/// Compiler-style caret excerpt (mirrors
/// [`Obligation::render`](crate::conformance::Obligation::render)).
fn render_caret(src: &str, span: Span, label: &str) -> String {
    let (line, col) = span.line_col(src);
    let line_text = src.lines().nth(line - 1).unwrap_or("");
    let width = span
        .end
        .saturating_sub(span.start)
        .clamp(1, line_text.len().saturating_sub(col - 1).max(1));
    format!(
        "  --> {line}:{col}\n   |\n{line:3}| {line_text}\n   | {}{} {label}",
        " ".repeat(col - 1),
        "^".repeat(width)
    )
}

/// Run the certify pass for one bound kernel: prove (or refute) every
/// lane width for the given matrix and length bounds.
pub fn analyze_certify(
    spec: &KernelSpec,
    bind: GapBindings,
    matrix: &SubstMatrix,
    max_query: usize,
    max_subject: usize,
) -> Result<CertifyReport, BindError> {
    let config = spec_to_config(spec, bind, matrix)?;
    let certificates = [8u32, 16, 32]
        .into_iter()
        .map(|bits| certify(&config, max_query, max_subject, bits))
        .collect();
    Ok(CertifyReport {
        label: spec.label(),
        matrix: matrix.name().to_string(),
        max_query,
        max_subject,
        certificates,
        config,
    })
}

// ---------------------------------------------------------------------------
// The shipped inventory and the combined pass.
// ---------------------------------------------------------------------------

/// One configuration the project ships and certifies by default.
#[derive(Debug, Clone)]
pub struct ShippedConfig {
    /// Builtin kernel name (`sw-affine`, `nw-linear`, …).
    pub kernel: &'static str,
    /// Kernel DSL source.
    pub source: &'static str,
    /// `blosum62` or `dna`.
    pub matrix: &'static str,
    /// Symbolic gap bindings (`GAP_OPEN` is θ+β, paper convention).
    pub bind: GapBindings,
    /// Length bounds the certificates cover.
    pub max_query: usize,
    pub max_subject: usize,
}

/// The default certification targets: the same configurations the
/// benches, the serve daemon and the search tests run.
pub fn shipped_configs() -> Vec<ShippedConfig> {
    vec![
        // Short-read DNA search: the headline i8 narrow path.
        ShippedConfig {
            kernel: "sw-affine",
            source: aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE,
            matrix: "dna",
            bind: GapBindings {
                gap_open: -7,
                gap_ext: -2,
            },
            max_query: 48,
            max_subject: 1000,
        },
        // Realistic protein search: i8 saturates, i16 certifies.
        ShippedConfig {
            kernel: "sw-affine",
            source: aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE,
            matrix: "blosum62",
            bind: GapBindings {
                gap_open: -12,
                gap_ext: -2,
            },
            max_query: 400,
            max_subject: 400,
        },
        // Global protein alignment at moderate lengths.
        ShippedConfig {
            kernel: "nw-affine",
            source: aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE,
            matrix: "blosum62",
            bind: GapBindings {
                gap_open: -12,
                gap_ext: -2,
            },
            max_query: 256,
            max_subject: 256,
        },
        // Linear-gap DNA, short lengths.
        ShippedConfig {
            kernel: "sw-linear",
            source: aalign_codegen::SMITH_WATERMAN_LINEAR,
            matrix: "dna",
            bind: GapBindings {
                gap_open: -3,
                gap_ext: -3,
            },
            max_query: 56,
            max_subject: 56,
        },
        // Linear-gap global DNA at lengths past the i8 range.
        ShippedConfig {
            kernel: "nw-linear",
            source: aalign_codegen::NEEDLEMAN_WUNSCH_LINEAR,
            matrix: "dna",
            bind: GapBindings {
                gap_open: -2,
                gap_ext: -2,
            },
            max_query: 100,
            max_subject: 100,
        },
    ]
}

/// Resolve a shipped config's matrix by name.
pub fn shipped_matrix(name: &str) -> Option<SubstMatrix> {
    match name {
        "blosum62" => Some(aalign_bio::matrices::BLOSUM62.clone()),
        "dna" => Some(SubstMatrix::dna(2, -3)),
        _ => None,
    }
}

/// Outcome of the full certify pass over the shipped inventory.
#[derive(Debug, Clone)]
pub struct CertifyPass {
    /// One report per shipped configuration, in inventory order.
    pub reports: Vec<CertifyReport>,
}

impl CertifyPass {
    /// True when every shipped configuration has at least one granted
    /// width — the project's "everything we ship can run
    /// rescue-free somewhere" invariant.
    pub fn is_certified(&self) -> bool {
        self.reports.iter().all(CertifyReport::is_certifiable)
    }

    /// The baseline text this pass pins: one line per (config, width)
    /// verdict — `<label> <matrix> q<max> s<max> i<bits> <verdict> 1`
    /// — sorted, the same `<key> <count>` shape as the other
    /// analyzer baselines.
    pub fn baseline_text(&self) -> String {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for r in &self.reports {
            for c in &r.certificates {
                let verdict = if c.granted { "granted" } else { "denied" };
                *counts
                    .entry(format!(
                        "{} {} q{} s{} i{} {verdict}",
                        r.label, r.matrix, r.max_query, r.max_subject, c.lane_bits
                    ))
                    .or_default() += 1;
            }
        }
        let mut out = String::new();
        for (key, count) in counts {
            let _ = writeln!(out, "{key} {count}");
        }
        out
    }

    /// Exact two-way comparison against the checked-in baseline:
    /// missing, new, and changed entries are all drift.
    pub fn check_baseline(&self, baseline: &str) -> Vec<String> {
        let parse = |text: &str| -> BTreeMap<String, usize> {
            let mut m = BTreeMap::new();
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some((key, count)) = line.rsplit_once(' ') {
                    if let Ok(count) = count.parse::<usize>() {
                        m.insert(key.to_string(), count);
                    }
                }
            }
            m
        };
        let actual = parse(&self.baseline_text());
        let expected = parse(baseline);
        let mut problems = Vec::new();
        for (key, count) in &actual {
            match expected.get(key) {
                None => problems.push(format!("new entry not in baseline: {key} {count}")),
                Some(want) if want != count => {
                    problems.push(format!("{key}: count {count} != baseline {want}"));
                }
                Some(_) => {}
            }
        }
        for (key, count) in &expected {
            if !actual.contains_key(key) {
                problems.push(format!("baseline entry vanished: {key} {count}"));
            }
        }
        problems
    }
}

/// The pinned certificate inventory over [`shipped_configs`].
/// Regenerate with `aalign-analyzer certify --print-baseline`.
pub const CERTIFY_BASELINE: &str = include_str!("../certify_baseline.txt");

/// Why the certify pass could not even reach verdicts for a config.
#[derive(Debug)]
pub enum CertifyError {
    /// The kernel source did not parse / classify.
    Kernel(String),
    /// The gap bindings were rejected.
    Bind(String, BindError),
    /// Unknown matrix name.
    Matrix(String),
}

impl core::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CertifyError::Kernel(m) => write!(f, "kernel error: {m}"),
            CertifyError::Bind(name, e) => write!(f, "{name}: cannot bind gap constants: {e}"),
            CertifyError::Matrix(m) => write!(f, "unknown matrix `{m}`"),
        }
    }
}

impl std::error::Error for CertifyError {}

/// Run the full pass over the shipped inventory.
pub fn run_certify_pass() -> Result<CertifyPass, CertifyError> {
    let mut reports = Vec::new();
    for ship in shipped_configs() {
        let prog = parse_program(ship.source)
            .map_err(|e| CertifyError::Kernel(format!("{}: {e}", ship.kernel)))?;
        let spec = analyze(&prog).map_err(|e| {
            CertifyError::Kernel(format!("{}:\n{}", ship.kernel, e.render(ship.source)))
        })?;
        let matrix =
            shipped_matrix(ship.matrix).ok_or_else(|| CertifyError::Matrix(ship.matrix.into()))?;
        let report = analyze_certify(&spec, ship.bind, &matrix, ship.max_query, ship.max_subject)
            .map_err(|e| CertifyError::Bind(ship.kernel.to_string(), e))?;
        reports.push(report);
    }
    Ok(CertifyPass { reports })
}

// ---------------------------------------------------------------------------
// Mutation self-test: the prover must have teeth.
// ---------------------------------------------------------------------------

/// A seeded perturbation of a certified configuration that must flip
/// the verdict at the previously granted width. Each mutant makes the
/// true score range (or the kernel's detection margin) exceed the
/// lane, so a prover that still grants it is unsound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertMutation {
    /// Raise the matrix's arg-max entry to the lane cap: one match
    /// already saturates.
    MaxEntryToCap,
    /// Multiply both length bounds by 4096: the diagonal ramp blows
    /// through any lane.
    LengthBlowup,
    /// Scale every matrix entry ×1024: score growth outruns the cap
    /// even for the roomy i16 configs (nw-lin at q100 needs the
    /// per-cell gain above ~325 before the i16 ceiling is crossed).
    ScaleEntries,
    /// Replace the gap extension with the full lane magnitude: the
    /// kernel's detection headroom alone exceeds the range.
    ExtremeExtension,
}

impl CertMutation {
    /// Deterministic seed → mutation mapping (`seed % 4`), mirroring
    /// [`aalign_core::conformance::Mutation::from_seed`].
    pub fn from_seed(seed: u64) -> Self {
        match seed % 4 {
            0 => CertMutation::MaxEntryToCap,
            1 => CertMutation::LengthBlowup,
            2 => CertMutation::ScaleEntries,
            _ => CertMutation::ExtremeExtension,
        }
    }

    /// Stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            CertMutation::MaxEntryToCap => "max-entry-to-cap",
            CertMutation::LengthBlowup => "length-blowup",
            CertMutation::ScaleEntries => "scale-entries",
            CertMutation::ExtremeExtension => "extreme-extension",
        }
    }

    /// Apply the mutation to a configuration certified at `bits`,
    /// returning the mutant (config, max_query, max_subject).
    pub fn apply(
        &self,
        cfg: &AlignConfig,
        bits: u32,
        max_query: usize,
        max_subject: usize,
    ) -> (AlignConfig, usize, usize) {
        let cap = i32::try_from(lane_cap(bits)).unwrap_or(i32::MAX);
        match self {
            CertMutation::MaxEntryToCap | CertMutation::ScaleEntries => {
                let old_max = cfg.matrix.max_score();
                let size = cfg.matrix.size() as u8;
                let mut scores = Vec::with_capacity(cfg.matrix.size() * cfg.matrix.size());
                for a in 0..size {
                    for &s in cfg.matrix.row(a) {
                        scores.push(match self {
                            CertMutation::MaxEntryToCap if s == old_max => cap,
                            CertMutation::MaxEntryToCap => s,
                            _ => s.saturating_mul(1024),
                        });
                    }
                }
                let matrix = SubstMatrix::new(
                    format!("{}-mutant", cfg.matrix.name()),
                    cfg.matrix.alphabet(),
                    scores,
                );
                (
                    AlignConfig::new(cfg.kind, cfg.gap, &matrix),
                    max_query,
                    max_subject,
                )
            }
            CertMutation::LengthBlowup => (
                cfg.clone(),
                max_query.saturating_mul(4096),
                max_subject.saturating_mul(4096),
            ),
            CertMutation::ExtremeExtension => {
                let gap = match cfg.gap {
                    GapModel::Linear { .. } => GapModel::linear(-cap),
                    GapModel::Affine { open, .. } => GapModel::affine(open, -cap),
                };
                (
                    AlignConfig::new(cfg.kind, gap, &cfg.matrix),
                    max_query,
                    max_subject,
                )
            }
        }
    }
}

/// Outcome of one mutation self-test run.
#[derive(Debug, Clone)]
pub struct MutationVerdict {
    /// The configuration the mutant was derived from.
    pub label: String,
    pub matrix: String,
    /// The width the original was granted at (the mutant must be
    /// denied there).
    pub lane_bits: u32,
    /// True when the prover denied the mutant — the required outcome.
    pub rejected: bool,
}

/// Run the mutation self-test: mutate every certifiable shipped
/// configuration at its narrowest granted width and check the prover
/// denies each mutant. Reports one verdict per mutated config;
/// soundness requires `rejected` on every one.
pub fn run_mutation_self_test(
    mutation: CertMutation,
) -> Result<Vec<MutationVerdict>, CertifyError> {
    let pass = run_certify_pass()?;
    let mut verdicts = Vec::new();
    for report in &pass.reports {
        let Some(bits) = report.narrowest_granted() else {
            continue;
        };
        let (cfg, mq, ms) =
            mutation.apply(&report.config, bits, report.max_query, report.max_subject);
        let mutant = certify(&cfg, mq, ms, bits);
        verdicts.push(MutationVerdict {
            label: report.label.clone(),
            matrix: report.matrix.clone(),
            lane_bits: bits,
            rejected: !mutant.granted,
        });
    }
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass() -> CertifyPass {
        run_certify_pass().unwrap()
    }

    #[test]
    fn shipped_inventory_certifies_and_matches_baseline() {
        let p = pass();
        assert!(p.is_certified(), "a shipped config lost all widths");
        let drift = p.check_baseline(CERTIFY_BASELINE);
        assert!(
            drift.is_empty(),
            "certificate inventory drift (regenerate with `aalign-analyzer certify \
             --print-baseline`):\n{}\n\ncurrent baseline text:\n{}",
            drift.join("\n"),
            p.baseline_text()
        );
    }

    #[test]
    fn dna_short_reads_certify_i8_and_blosum_certifies_i16() {
        let p = pass();
        let dna = &p.reports[0];
        assert_eq!(
            (dna.label.as_str(), dna.matrix.as_str()),
            ("sw-aff", "dna(2,-3)")
        );
        assert_eq!(dna.narrowest_granted(), Some(8));
        let blosum = &p.reports[1];
        assert_eq!(blosum.matrix, "BLOSUM62");
        assert_eq!(blosum.narrowest_granted(), Some(16));
        assert!(!blosum.certificates[0].granted, "i8 must be denied");
    }

    #[test]
    fn denial_renders_caret_at_the_violating_term() {
        let p = pass();
        let blosum = &p.reports[1];
        let rendered = blosum.render(aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE);
        assert!(rendered.contains("DENIED"), "{rendered}");
        assert!(rendered.contains("-->"), "location line: {rendered}");
        assert!(rendered.contains('^'), "caret underline: {rendered}");
        assert!(rendered.contains("tightest certifying bound"), "{rendered}");
        assert!(rendered.contains("witness:"), "{rendered}");
        assert!(
            rendered.contains("narrowest certified width: i16"),
            "{rendered}"
        );
    }

    #[test]
    fn every_mutation_is_rejected_on_every_shipped_config() {
        for seed in 0..4u64 {
            let mutation = CertMutation::from_seed(seed);
            let verdicts = run_mutation_self_test(mutation).unwrap();
            assert!(!verdicts.is_empty());
            for v in verdicts {
                assert!(
                    v.rejected,
                    "prover granted a `{}` mutant of {} vs {} at i{} — unsound",
                    mutation.name(),
                    v.label,
                    v.matrix,
                    v.lane_bits
                );
            }
        }
    }

    #[test]
    fn baseline_detects_drift_both_ways() {
        let p = pass();
        let mut plus = p.baseline_text();
        plus.push_str("ghost-kernel dna q1 s1 i8 granted 1\n");
        assert!(p
            .check_baseline(&plus)
            .iter()
            .any(|m| m.contains("vanished")));
        let minus = p
            .baseline_text()
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(p
            .check_baseline(&minus)
            .iter()
            .any(|m| m.contains("not in baseline")));
    }

    #[test]
    fn term_anchors_resolve_in_the_builtin_sources() {
        for src in [
            aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE,
            aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE,
        ] {
            for term in [CertTerm::Diag, CertTerm::GapOpen, CertTerm::GapExtend] {
                assert!(term_anchor(src, term).is_some(), "{term:?} in {src}");
            }
        }
        assert!(term_anchor(
            aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE,
            CertTerm::LocalZero
        )
        .is_some());
    }
}
