//! Property tests for the range pass (satellite of the analyzer PR).
//!
//! 1. The interval-arithmetic bounds are *sound*: no execution of the
//!    bound configuration — random builtin kernel, random gap
//!    penalties, random matrix, random sequences — ever produces a
//!    score outside the predicted `[t_min, t_max]`.
//! 2. Lane-width selection round-trips through `aalign_vec::elem`: if
//!    the analysis picks `i{B}` then every predicted bound (and its
//!    biased image) is exactly representable in that element type, and
//!    the saturation ceiling stays below the element's `MAX_SCORE`.

use aalign_analyzer::analyze_range;
use aalign_bio::alphabet::{DNA, PROTEIN};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::{Sequence, SubstMatrix};
use aalign_codegen::emit::GapBindings;
use aalign_codegen::{analyze, parse_program, KernelSpec};
use aalign_core::paradigm::paradigm_dp;
use aalign_core::ScoreBounds;
use aalign_vec::ScoreElem;
use proptest::prelude::*;

fn builtin_specs() -> Vec<KernelSpec> {
    [
        aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE,
        aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE,
        aalign_codegen::SMITH_WATERMAN_LINEAR,
        aalign_codegen::NEEDLEMAN_WUNSCH_LINEAR,
    ]
    .iter()
    .map(|src| analyze(&parse_program(src).unwrap()).unwrap())
    .collect()
}

fn matrix_for(choice: usize) -> SubstMatrix {
    match choice {
        0 => BLOSUM62.clone(),
        1 => SubstMatrix::dna(2, -3),
        _ => SubstMatrix::dna(1, -1),
    }
}

/// Check that `v` survives an exact round-trip through element `E`.
/// (A selected lane width guarantees the bounds fit in i32, so the
/// narrowing conversion cannot lose information before the test.)
fn roundtrips_exactly<E: ScoreElem>(v: i64) -> bool {
    let Ok(v32) = i32::try_from(v) else {
        return false;
    };
    i64::from(E::from_i32_sat(v32).to_i32()) == v
}

/// The signed values the kernels would ever materialize for these
/// bounds: the T and U/L interval endpoints. (Biased images live in
/// *unsigned* lanes and are checked separately against `2^bits`.)
fn representative_values(b: &ScoreBounds) -> [i64; 4] {
    [b.t_min, b.t_max, b.ul_min, b.ul_max]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Property 1: executing the exact configuration the range pass
    /// analyzed never escapes the predicted interval.
    #[test]
    fn dp_scores_never_violate_predicted_bounds(
        kernel in 0usize..4,
        matrix_choice in 0usize..3,
        ext in -6i32..=-1,
        open_delta in 0i32..=12,
        protein_q in proptest::collection::vec(0u8..20, 1..24),
        protein_s in proptest::collection::vec(0u8..20, 1..24),
        dna_q in proptest::collection::vec(0u8..4, 1..24),
        dna_s in proptest::collection::vec(0u8..4, 1..24),
    ) {
        let spec = builtin_specs().swap_remove(kernel);
        let matrix = matrix_for(matrix_choice);
        // theta = open - ext must be <= 0, so open <= ext (both < 0).
        let bind = GapBindings { gap_open: ext - open_delta, gap_ext: ext };
        let (q, s) = if matrix_choice == 0 {
            (
                Sequence::from_indices("q", &PROTEIN, protein_q),
                Sequence::from_indices("s", &PROTEIN, protein_s),
            )
        } else {
            (
                Sequence::from_indices("q", &DNA, dna_q),
                Sequence::from_indices("s", &DNA, dna_s),
            )
        };

        let report = analyze_range(&spec, bind, &matrix, q.len(), s.len()).unwrap();
        let got = paradigm_dp(&report.config, &q, &s);
        prop_assert!(
            (report.bounds.t_min..=report.bounds.t_max).contains(&i64::from(got.score)),
            "{} score {} escapes predicted [{}, {}] (open {}, ext {}, {}x{})",
            report.label, got.score,
            report.bounds.t_min, report.bounds.t_max,
            bind.gap_open, bind.gap_ext, q.len(), s.len(),
        );
    }

    /// Property 2: the selected lane width is honest about the element
    /// type it names — every bound survives `from_i32_sat`/`to_i32`
    /// unchanged and the saturation ceiling respects `MAX_SCORE`.
    #[test]
    fn lane_width_selection_roundtrips_through_elem(
        kernel in 0usize..4,
        matrix_choice in 0usize..3,
        ext in -6i32..=-1,
        open_delta in 0i32..=12,
        max_query in 1usize..3000,
        max_subject in 1usize..3000,
    ) {
        let spec = builtin_specs().swap_remove(kernel);
        let matrix = matrix_for(matrix_choice);
        let bind = GapBindings { gap_open: ext - open_delta, gap_ext: ext };
        let report = analyze_range(&spec, bind, &matrix, max_query, max_subject).unwrap();
        let b = &report.bounds;

        if let Some(bits) = report.lane_bits {
            let (all_exact, max_score, elem_bits) = match bits {
                8 => (
                    representative_values(b).iter().all(|&v| roundtrips_exactly::<i8>(v)),
                    <i8 as ScoreElem>::MAX_SCORE.to_i32(),
                    <i8 as ScoreElem>::BITS,
                ),
                16 => (
                    representative_values(b).iter().all(|&v| roundtrips_exactly::<i16>(v)),
                    <i16 as ScoreElem>::MAX_SCORE.to_i32(),
                    <i16 as ScoreElem>::BITS,
                ),
                32 => (
                    representative_values(b).iter().all(|&v| roundtrips_exactly::<i32>(v)),
                    <i32 as ScoreElem>::MAX_SCORE.to_i32(),
                    <i32 as ScoreElem>::BITS,
                ),
                other => panic!("analysis selected unknown width i{other}"),
            };
            prop_assert_eq!(bits, elem_bits);
            prop_assert!(
                all_exact,
                "i{} cannot exactly represent bounds {:?}", bits, b,
            );
            prop_assert!(
                b.saturation_ceiling(bits) <= i64::from(max_score),
                "saturation ceiling {} above i{}::MAX_SCORE {}",
                b.saturation_ceiling(bits), bits, max_score,
            );
            // The biased-unsigned representation must fit too: the
            // largest biased value stays inside the lane's 2^bits.
            prop_assert!(
                b.t_max.max(b.ul_max) + b.bias() + b.headroom < (1i64 << bits),
                "biased ceiling {} escapes u{} for bounds {:?}",
                b.t_max.max(b.ul_max) + b.bias() + b.headroom, bits, b,
            );
            // Selection is minimal *and* monotone: every narrower
            // width was rejected, every wider one also fits.
            for narrower in [8u32, 16, 32].into_iter().filter(|&w| w < bits) {
                prop_assert!(report.rejected_bits.contains(&narrower));
            }
            for wider in [8u32, 16, 32].into_iter().filter(|&w| w > bits) {
                prop_assert!(b.fits(wider));
            }
        } else {
            // Rejected outright: even i32 must genuinely fail.
            prop_assert!(!b.fits(32));
            prop_assert_eq!(report.rejected_bits.clone(), vec![8, 16, 32]);
        }
    }
}
