//! Tier-1 wiring for the static passes in `aalign-analyzer`: every
//! `cargo test` run verifies the builtin kernels' dataflow legality,
//! the range analysis the runtime width policy relies on, the
//! unsafe-SIMD audit of the backend sources, the atomics-discipline
//! lint over the concurrent crates, and the kernel conformance layer
//! (symbolic proof obligations + the bounded-exhaustive differential
//! harness) — so a change that breaks a static guarantee fails the
//! main suite, not just the analyzer's.

use aalign_analyzer::audit::{audit_dir, default_vec_src_dir, VEC_BASELINE};
use aalign_analyzer::concurrency::{default_concurrency_dirs, scan_dirs, CONCURRENCY_BASELINE};
use aalign_analyzer::conformance::{
    builtin_sources, run_conformance_pass, CONFORMANCE_BASELINE, UNJUSTIFIABLE_FIXTURE,
};
use aalign_analyzer::{analyze_range, prove_kernel, verify_dataflow, ObligationStatus};
use aalign_bio::matrices::BLOSUM62;
use aalign_codegen::emit::GapBindings;
use aalign_codegen::{analyze, parse_program};
use aalign_core::{AlignConfig, Aligner, WidthPolicy};

const BUILTINS: [(&str, &str); 4] = [
    ("sw-affine", aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE),
    ("nw-affine", aalign_codegen::NEEDLEMAN_WUNSCH_AFFINE),
    ("sw-linear", aalign_codegen::SMITH_WATERMAN_LINEAR),
    ("nw-linear", aalign_codegen::NEEDLEMAN_WUNSCH_LINEAR),
];

/// Every builtin kernel must stay legal for striped vectorization.
#[test]
fn builtin_kernels_pass_dataflow_verification() {
    for (name, src) in BUILTINS {
        let prog = parse_program(src).unwrap();
        analyze(&prog).unwrap_or_else(|e| panic!("{name}: {}", e.render(src)));
        let report = verify_dataflow(&prog).unwrap_or_else(|diags| {
            panic!(
                "{name} failed dataflow verification:\n{}",
                diags
                    .iter()
                    .map(|d| d.render(src))
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        });
        assert!(report.reads_prev_row() && report.reads_prev_col(), "{name}");
    }
}

/// A kernel with a reversed dependency must be rejected, and the
/// diagnostic must carry a span pointing at the offending subscript.
#[test]
fn reversed_dependency_is_rejected_with_span() {
    let src = "\
for (i = 0; i < n + 1; i = i + 1) { T[0][i] = 0; }
for (j = 0; j < m + 1; j = j + 1) { T[j][0] = 0; }
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(0, T[i-1][j] + GAP_EXT, T[i][j+1] + GAP_EXT, D[i][j]);
    }
}
";
    let prog = parse_program(src).unwrap();
    let diags = verify_dataflow(&prog).unwrap_err();
    assert_eq!(diags.len(), 1);
    let d = &diags[0];
    assert_eq!(&src[d.span.start..d.span.end], "T[i][j+1]");
    assert!(d.render(src).contains("^^^^^^^^^"), "{}", d.render(src));
}

/// The analyzer's width selection and the runtime `Aligner`'s width
/// policy must agree: the narrowest lane the analysis certifies is
/// the one the kernels start in.
#[test]
fn range_analysis_matches_runtime_width_policy() {
    let spec =
        analyze(&parse_program(aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap();
    for (open, ext, m, n) in [
        (-3i32, -1i32, 256usize, 256usize), // the acceptance case: i16
        (-12, -2, 4, 4),                    // tiny: i8
        (-12, -2, 30_000, 30_000),          // long: i32
    ] {
        let bind = GapBindings {
            gap_open: open,
            gap_ext: ext,
        };
        let report = analyze_range(&spec, bind, &BLOSUM62, m, n).unwrap();
        let bits = report
            .lane_bits
            .unwrap_or_else(|| panic!("open {open} ext {ext} rejected"));
        assert!(
            report.config.score_bounds(m, n).fits(bits),
            "selected width must satisfy its own bound"
        );
        // The kernel-side check is the same analysis: narrow_ok agrees.
        for w in [8u32, 16, 32] {
            let fits = report.config.score_bounds(m, n).fits(w);
            assert_eq!(
                fits,
                !report.rejected_bits.contains(&w),
                "analyzer and report disagree at i{w}"
            );
        }
        assert!(report.rejected_bits.iter().all(|&r| r < bits));
    }
}

/// Score-range soundness, end to end: run the real `Aligner` (auto
/// width policy, whatever backend this host has) on the acceptance
/// configuration and check the observed score obeys the bounds.
#[test]
fn runtime_scores_obey_analyzer_bounds() {
    use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};

    let spec =
        analyze(&parse_program(aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap();
    let bind = GapBindings {
        gap_open: -3,
        gap_ext: -1,
    };
    let report = analyze_range(&spec, bind, &BLOSUM62, 200, 240).unwrap();
    let cfg: AlignConfig = report.config.clone();
    let aligner = Aligner::new(cfg).with_width(WidthPolicy::Auto);
    let mut rng = seeded_rng(42);
    let q = named_query(&mut rng, 180);
    for pair in [
        PairSpec::new(Level::Hi, Level::Hi),
        PairSpec::new(Level::Md, Level::Lo),
    ] {
        let s = pair.generate(&mut rng, &q).subject;
        let score = i64::from(aligner.align(&q, &s).unwrap().score);
        assert!(
            (report.bounds.t_min..=report.bounds.t_max).contains(&score),
            "observed {score} outside [{}, {}]",
            report.bounds.t_min,
            report.bounds.t_max
        );
    }
}

/// The SIMD backends stay audited: SAFETY comments, target-feature
/// contracts, and the pinned unsafe-count baseline.
#[test]
fn vec_backends_stay_audited() {
    let report = audit_dir(&default_vec_src_dir()).unwrap();
    assert!(
        report.is_clean(),
        "audit findings:\n{}",
        report
            .findings
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.check_baseline(VEC_BASELINE).is_empty());
}

/// The concurrent crates stay disciplined: every atomic site carries
/// an `// ORDER:` justification obeying the SeqCst/Relaxed rules, and
/// the atomics inventory exactly matches the pinned baseline. The
/// static proofs complement the loom suites (which explore
/// interleavings but not memory orderings).
#[test]
fn concurrent_crates_stay_disciplined() {
    let report = scan_dirs(&default_concurrency_dirs()).unwrap();
    assert!(
        report.is_clean(),
        "concurrency findings:\n{}",
        report
            .findings
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let problems = report.check_baseline(CONCURRENCY_BASELINE);
    assert!(
        problems.is_empty(),
        "atomics inventory drift:\n{}",
        problems.join("\n")
    );
}

/// Every shipped recurrence discharges its conformance obligations —
/// the symbolic proof that the Eq.(2)→Eq.(3–6) rewrite is
/// score-preserving — and the differential harness finds every vector
/// kernel bit-exact against `paradigm_dp` at the CI bounds. The full
/// inventory (obligations × kernels + harness variant coverage) is
/// pinned, exactly like the atomics baseline.
#[test]
fn conformance_obligations_discharge_and_harness_is_bit_exact() {
    let sources: Vec<(String, String)> = builtin_sources()
        .into_iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    let pass = run_conformance_pass(&sources).unwrap();
    for proof in &pass.proofs {
        assert!(
            proof.is_discharged(),
            "{} has undischarged obligations:\n{}",
            proof.kernel,
            proof
                .failures()
                .iter()
                .map(|o| format!("{}: {}", o.id, o.detail))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    assert!(
        pass.harness.is_bit_exact(),
        "harness mismatches: {}",
        pass.harness.summary()
    );
    let drift = pass.check_baseline(CONFORMANCE_BASELINE);
    assert!(
        drift.is_empty(),
        "conformance inventory drift (regenerate with `aalign-analyzer conformance \
         --print-baseline`):\n{}",
        drift.join("\n")
    );
}

/// A recurrence that *classifies* fine but cannot be justified — its
/// column-gap family opens from the previous row — must come back as
/// a failed obligation with a caret diagnostic, not a panic.
#[test]
fn unjustifiable_recurrence_reports_instead_of_panicking() {
    let proof = prove_kernel("fixture", UNJUSTIFIABLE_FIXTURE).unwrap();
    assert!(!proof.is_discharged());
    let col = proof
        .obligations
        .iter()
        .find(|o| o.id == "eq2-col-unroll")
        .unwrap();
    assert_eq!(col.status, ObligationStatus::Failed);
    let rendered = col.render(UNJUSTIFIABLE_FIXTURE);
    assert!(
        rendered.contains("-->") && rendered.contains('^'),
        "{rendered}"
    );
}

/// The mutation self-test has teeth: perturbing any single max/gap
/// term on the kernel side must produce at least one mismatch at the
/// CI bounds — otherwise the harness could not catch a real bug of
/// that shape either.
#[test]
fn seeded_mutations_are_caught_by_the_harness() {
    use aalign_core::conformance::{run_harness, HarnessOptions, Mutation};
    for mutation in Mutation::ALL {
        let opts = HarnessOptions {
            mutation: Some(mutation),
            ..HarnessOptions::ci()
        };
        let report = run_harness(&opts);
        assert!(
            !report.is_bit_exact(),
            "mutation `{}` was NOT caught",
            mutation.name()
        );
    }
}
