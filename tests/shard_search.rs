//! Shard-supervisor integration: N-shard answers must be
//! bit-identical to the single-process engine, shard loss must
//! degrade to an exactly-accounted partial answer, and chaos (child
//! SIGKILLs mid-query) must never hang the supervisor.
//!
//! These tests spawn real `aalign serve --stdio` child processes via
//! `CARGO_BIN_EXE_aalign`, so they exercise the whole stack: wire
//! protocol, readiness pings, retry/backoff, merge, drain.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use aalign::bio::matrices::BLOSUM62;
use aalign::bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign::bio::{SeqDatabase, Sequence};
use aalign::par::{EngineHandle, Hit, SearchOptions};
use aalign::shard::{ShardOptions, ShardQuery, Supervisor, WorkerCommand};
use aalign::{AlignConfig, Aligner, GapModel, Strategy};

/// Children run this binary's default serve aligner (local affine
/// −10/−2 over BLOSUM62, hybrid strategy); the reference sweep must
/// use exactly the same configuration for bit-exact comparison.
fn reference_aligner() -> Aligner {
    Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62))
        .with_strategy(Strategy::Hybrid)
}

fn worker_cmd() -> WorkerCommand {
    WorkerCommand::serve_stdio(
        env!("CARGO_BIN_EXE_aalign"),
        &["--threads".to_string(), "1".to_string()],
    )
}

fn reference_hits(db: &SeqDatabase, query_text: &str, top_n: usize) -> Vec<Hit> {
    let query = Sequence::protein("query", query_text.as_bytes()).unwrap();
    let report = EngineHandle::transient(1, db.len())
        .search(
            &reference_aligner(),
            &query,
            db,
            &SearchOptions::new().top_n(top_n),
        )
        .unwrap();
    report.hits
}

/// Run `f` on its own thread and fail loudly if it wedges — the
/// "never hangs" half of every chaos pin.
#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("watchdog: sharded search hung past {secs}s"),
    }
}

#[test]
fn n_shard_answers_are_bit_identical_to_the_single_process_engine() {
    let db = swissprot_like_db(31, 50);
    let mut rng = seeded_rng(77);
    let queries: Vec<String> = (0..2)
        .map(|i| String::from_utf8(named_query(&mut rng, 40 + i * 25).text()).unwrap())
        .collect();

    for shards in [1usize, 2, 4] {
        let sup = Supervisor::launch(&db, worker_cmd(), ShardOptions::new(shards))
            .unwrap_or_else(|e| panic!("launch {shards} shards: {e}"));
        assert_eq!(sup.shards(), shards);
        // `top_n = 0` (every hit) pins the full ranking including
        // every tie; `top_n = 7` pins the truncated-merge contract.
        for (q, top_n) in queries.iter().zip([0usize, 7]) {
            let report = sup
                .search(&ShardQuery::new(q.clone()).top_n(top_n))
                .unwrap_or_else(|e| panic!("{shards}-shard search: {e}"));
            assert!(!report.partial, "healthy shards must answer completely");
            assert_eq!(report.subjects, db.len());
            assert_eq!(report.metrics.shards.ok, shards as u64);
            assert_eq!(report.metrics.shards.failed, 0);
            // Bit-exact: same scores, same (rebased) indices, same
            // tie order as one engine sweeping the whole database.
            assert_eq!(
                report.hits,
                reference_hits(&db, q, top_n),
                "{shards} shards, top_n {top_n}"
            );
        }
        assert!(sup.shutdown(), "healthy children must drain cleanly");
    }
}

#[test]
fn shard_ranges_partition_the_database_contiguously() {
    let db = swissprot_like_db(5, 23);
    let sup = Supervisor::launch(&db, worker_cmd(), ShardOptions::new(4)).unwrap();
    let ranges = sup.ranges();
    assert_eq!(ranges.len(), 4);
    assert_eq!(ranges[0].0, 0);
    assert_eq!(ranges.last().unwrap().1, db.len());
    for pair in ranges.windows(2) {
        assert_eq!(pair[0].1, pair[1].0, "contiguous: {ranges:?}");
    }
    assert!(sup.shutdown());
}

#[cfg(feature = "fault-inject")]
mod chaos {
    use super::*;
    use aalign::core::AlignError;
    use aalign::shard::ShardFaultPlan;

    /// A shard whose child is SIGKILLed on every dispatch (retry
    /// included) is lost for the query: the merged report must be
    /// `partial: true`, the uncovered range must be *exactly* the
    /// dead shard's, and the survivors' hits must be bit-exact.
    #[test]
    fn dead_shard_reports_exactly_its_uncovered_range() {
        with_watchdog(120, || {
            let db = swissprot_like_db(9, 40);
            let mut rng = seeded_rng(11);
            let q = String::from_utf8(named_query(&mut rng, 50).text()).unwrap();
            let victim = 1usize;
            let opts = ShardOptions::new(4)
                .fault(ShardFaultPlan {
                    shard: victim,
                    remaining: None,
                })
                .backoff(Duration::from_millis(5), Duration::from_millis(50), 7);
            let sup = Supervisor::launch(&db, worker_cmd(), opts).unwrap();
            let (lost_start, lost_end) = sup.ranges()[victim];

            let report = sup.search(&ShardQuery::new(q.clone())).unwrap();
            assert!(report.partial);
            assert_eq!(report.metrics.shards.failed, 1);
            assert_eq!(report.metrics.shards.ok, 3);
            assert_eq!(report.metrics.shards.retried, 1, "one idempotent retry");
            assert!(
                report.errors.contains(&AlignError::ShardLost {
                    shard: victim,
                    start: lost_start,
                    end: lost_end,
                }),
                "{:?}",
                report.errors
            );
            // Survivors bit-exact: the merged hits are precisely the
            // reference ranking with the dead shard's range removed.
            let expected: Vec<Hit> = reference_hits(&db, &q, 0)
                .into_iter()
                .filter(|h| h.db_index < lost_start || h.db_index >= lost_end)
                .collect();
            assert_eq!(report.hits, expected);
            sup.shutdown();
        });
    }

    /// Sweep kills across different shards and kill budgets: every
    /// query completes (no hang), survivors stay bit-exact, and a
    /// single kill is always rescued by the idempotent retry.
    #[test]
    fn chaos_sweep_never_hangs_and_single_kills_are_rescued() {
        with_watchdog(240, || {
            let db = swissprot_like_db(13, 30);
            let mut rng = seeded_rng(29);
            let q = String::from_utf8(named_query(&mut rng, 45).text()).unwrap();
            let expected = reference_hits(&db, &q, 0);

            for victim in 0..3usize {
                let opts = ShardOptions::new(3)
                    .fault(ShardFaultPlan::kill_first(victim, 1))
                    .backoff(Duration::from_millis(5), Duration::from_millis(50), 3);
                let sup = Supervisor::launch(&db, worker_cmd(), opts).unwrap();
                let report = sup.search(&ShardQuery::new(q.clone())).unwrap();
                assert!(
                    !report.partial,
                    "a single kill of shard {victim} must be rescued by the retry: {:?}",
                    report.errors
                );
                assert_eq!(report.metrics.shards.retried, 1);
                assert_eq!(report.metrics.shards.ok, 3);
                assert_eq!(report.hits, expected, "victim {victim}");
                assert_eq!(sup.respawns(), 1, "one respawn served the retry");
                sup.shutdown();
            }
        });
    }

    /// Repeated deaths trip the circuit breaker: the shard is marked
    /// dead, later queries skip it immediately (degraded, not
    /// hanging), and the survivors keep answering.
    #[test]
    fn breaker_trips_after_repeated_deaths_and_search_continues() {
        with_watchdog(240, || {
            let db = swissprot_like_db(17, 24);
            let mut rng = seeded_rng(41);
            let q = String::from_utf8(named_query(&mut rng, 40).text()).unwrap();
            let opts = ShardOptions::new(2)
                .fault(ShardFaultPlan {
                    shard: 0,
                    remaining: None,
                })
                .backoff(Duration::from_millis(5), Duration::from_millis(50), 1)
                .breaker(2, Duration::from_secs(60))
                .heartbeat(None); // deaths counted on the query path only
            let sup = Supervisor::launch(&db, worker_cmd(), opts).unwrap();

            // First query: dispatch kill + retry kill = 2 deaths →
            // breaker trips during collection.
            let first = sup.search(&ShardQuery::new(q.clone())).unwrap();
            assert!(first.partial);
            assert_eq!(sup.shards_dead(), 1, "breaker must have tripped");

            // Later queries skip the dead shard without waiting on it.
            let later = sup.search(&ShardQuery::new(q.clone())).unwrap();
            assert!(later.partial);
            assert_eq!(later.metrics.shards.failed, 1);
            assert_eq!(
                later.metrics.shards.retried, 0,
                "dead shards are not retried"
            );
            let (s, e) = sup.ranges()[0];
            assert!(later.errors.contains(&AlignError::ShardLost {
                shard: 0,
                start: s,
                end: e
            }));
            // The survivor's half is still bit-exact.
            let expected: Vec<Hit> = reference_hits(&db, &q, 0)
                .into_iter()
                .filter(|h| h.db_index >= e)
                .collect();
            assert_eq!(later.hits, expected);
            sup.shutdown();
        });
    }
}
