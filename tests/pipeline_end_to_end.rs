//! End-to-end scenarios spanning all crates: FASTA in → database
//! search → traceback out; sequential paradigm text → analysis →
//! kernels → database search; the SWPS3/SWAPHI comparators against
//! the main aligner.

use aalign::baselines::swps3_like::{Swps3Like, Swps3Scratch};
use aalign::baselines::{naive_align, SwaphiLike};
use aalign::bio::alphabet::PROTEIN;
use aalign::bio::fasta::{parse_fasta, write_fasta};
use aalign::bio::matrices::BLOSUM62;
use aalign::bio::synth::{named_query, seeded_rng, swissprot_like_db, Level, PairSpec};
use aalign::bio::SeqDatabase;
use aalign::codegen::emit::GapBindings;
use aalign::codegen::{analyze, parse_program, spec_to_config, ALG1_SMITH_WATERMAN_AFFINE};
use aalign::core::traceback::traceback_align;
use aalign::par::{search_database, SearchOptions};
use aalign::AlignScratch;
use aalign::{AlignConfig, Aligner, GapModel, Strategy};

#[test]
fn fasta_roundtrip_search_and_traceback() {
    // Build a small database, serialize to FASTA, parse it back, and
    // search it — everything scores consistently.
    let mut rng = seeded_rng(1000);
    let query = named_query(&mut rng, 120);
    let mut seqs = swissprot_like_db(1001, 40).sequences().to_vec();
    let planted = PairSpec::new(Level::Hi, Level::Hi)
        .generate(&mut rng, &query)
        .subject;
    seqs.push(planted.clone());

    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &seqs, 70).unwrap();
    let parsed = parse_fasta(std::str::from_utf8(&fasta).unwrap(), &PROTEIN).unwrap();
    assert_eq!(parsed.len(), seqs.len());
    let db = SeqDatabase::new(parsed);

    let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
    let report = search_database(
        &aligner,
        &query,
        &db,
        SearchOptions::new().threads(2).top_n(3),
    )
    .unwrap();
    assert_eq!(db.id(report.hits[0].db_index), planted.id());

    // Traceback of the winner reproduces the search score.
    let aln = traceback_align(aligner.config(), &query, db.get(report.hits[0].db_index));
    assert_eq!(aln.score, report.hits[0].score);
    assert!(
        aln.identity > 0.5,
        "planted hi_hi pair should align tightly"
    );
}

#[test]
fn codegen_pipeline_drives_database_search() {
    // Sequential text → spec → config → multithreaded search must
    // equal a hand-built configuration end to end.
    let spec = analyze(&parse_program(ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap();
    let cfg_text = spec_to_config(
        &spec,
        GapBindings {
            gap_open: -12,
            gap_ext: -2,
        },
        &BLOSUM62,
    )
    .unwrap();
    let cfg_hand = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let mut rng = seeded_rng(77);
    let query = named_query(&mut rng, 90);
    let db = swissprot_like_db(78, 30);
    let opts = SearchOptions::new().threads(2).top_n(0);
    let a = search_database(&Aligner::new(cfg_text), &query, &db, opts.clone()).unwrap();
    let b = search_database(&Aligner::new(cfg_hand), &query, &db, opts).unwrap();
    assert_eq!(a.hits, b.hits);
}

#[test]
fn comparators_agree_with_main_aligner_and_naive() {
    let mut rng = seeded_rng(31337);
    let query = named_query(&mut rng, 140);
    let gap = GapModel::affine(-10, -2);
    let cfg = AlignConfig::local(gap, &BLOSUM62);
    let aligner = Aligner::new(cfg.clone()).with_strategy(Strategy::Hybrid);
    let swps3 = Swps3Like::new(&query, gap, &BLOSUM62);
    let swaphi = SwaphiLike::new(&query, gap, &BLOSUM62);
    let mut s3scratch = Swps3Scratch::new();
    let mut ws = AlignScratch::new();

    for spec in aalign::bio::synth::nine_similarity_specs() {
        let subject = spec.generate(&mut rng, &query).subject;
        let reference = naive_align(&cfg, &query, &subject);
        assert_eq!(
            aligner.align(&query, &subject).unwrap().score,
            reference,
            "aalign {}",
            spec.label()
        );
        assert_eq!(
            swps3.align(&subject, &mut s3scratch).score,
            reference,
            "swps3-like {}",
            spec.label()
        );
        assert_eq!(
            swaphi.align(&subject, &mut ws).score,
            reference,
            "swaphi-like {}",
            spec.label()
        );
    }
}

#[test]
fn hybrid_switches_on_planted_similarity_and_scores_identically() {
    let mut rng = seeded_rng(9001);
    let query = named_query(&mut rng, 300);
    let similar = PairSpec::new(Level::Hi, Level::Hi)
        .generate(&mut rng, &query)
        .subject;
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let hybrid = Aligner::new(cfg.clone())
        .with_strategy(Strategy::Hybrid)
        .with_width(aalign::WidthPolicy::Fixed32)
        .align(&query, &similar)
        .unwrap();
    let iterate = Aligner::new(cfg)
        .with_strategy(Strategy::StripedIterate)
        .with_width(aalign::WidthPolicy::Fixed32)
        .align(&query, &similar)
        .unwrap();

    assert_eq!(hybrid.score, iterate.score);
    assert!(
        hybrid.stats.scan_columns > 0,
        "similar pair must trigger scan mode: {:?}",
        hybrid.stats
    );
    assert!(hybrid.stats.switches_to_scan >= 1);
}
