//! Property-based tests of alignment-theoretic invariants, exercised
//! through the full SIMD stack (default dispatch).

use aalign::bio::alphabet::PROTEIN;
use aalign::bio::matrices::BLOSUM62;
use aalign::bio::Sequence;
use aalign::core::traceback::traceback_align;
use aalign::{AlignConfig, AlignKind, Aligner, GapModel};
use proptest::prelude::*;

fn protein_seq(min: usize, max: usize) -> impl Strategy<Value = Sequence> {
    proptest::collection::vec(0u8..20, min..=max)
        .prop_map(|idx| Sequence::from_indices("prop", &PROTEIN, idx))
}

fn gap_model() -> impl Strategy<Value = GapModel> {
    prop_oneof![
        (-15i32..=0, -6i32..-1).prop_map(|(open, ext)| GapModel::affine(open, ext)),
        (-6i32..-1).prop_map(GapModel::linear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Local scores are never negative.
    #[test]
    fn local_scores_are_non_negative(
        q in protein_seq(1, 60),
        s in protein_seq(0, 60),
        gap in gap_model(),
    ) {
        let cfg = AlignConfig::local(gap, &BLOSUM62);
        let out = Aligner::new(cfg).align(&q, &s).unwrap();
        prop_assert!(out.score >= 0);
    }

    /// With a symmetric matrix, local and global alignment are
    /// symmetric in their inputs. (Semi-global is deliberately NOT:
    /// the query must be consumed but the subject's ends are free.)
    #[test]
    fn alignment_is_symmetric(
        q in protein_seq(1, 50),
        s in protein_seq(1, 50),
        gap in gap_model(),
        kind in prop_oneof![Just(AlignKind::Local), Just(AlignKind::Global)],
    ) {
        let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
        let a = Aligner::new(cfg.clone()).align(&q, &s).unwrap().score;
        let b = Aligner::new(cfg).align(&s, &q).unwrap().score;
        prop_assert_eq!(a, b);
    }

    /// Extending the subject can only improve (or keep) a local score.
    #[test]
    fn local_score_monotone_in_subject_extension(
        q in protein_seq(1, 40),
        s in protein_seq(1, 40),
        extra in protein_seq(1, 20),
        gap in gap_model(),
    ) {
        let cfg = AlignConfig::local(gap, &BLOSUM62);
        let short = Aligner::new(cfg.clone()).align(&q, &s).unwrap().score;
        let mut extended = s.indices().to_vec();
        extended.extend_from_slice(extra.indices());
        let s2 = Sequence::from_indices("ext", &PROTEIN, extended);
        let long = Aligner::new(cfg).align(&q, &s2).unwrap().score;
        prop_assert!(long >= short, "extending subject lowered score {short} -> {long}");
    }

    /// Self-alignment (local) equals the sum of diagonal self-scores.
    #[test]
    fn local_self_alignment_is_diagonal_sum(q in protein_seq(1, 80)) {
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let out = Aligner::new(cfg).align(&q, &q).unwrap();
        let want: i32 = q.indices().iter().map(|&r| BLOSUM62.score(r, r)).sum();
        prop_assert_eq!(out.score, want);
    }

    /// Relaxing constraints can only help:
    /// local ≥ semi-global ≥ global on every pair.
    #[test]
    fn kind_relaxation_ordering(
        q in protein_seq(1, 50),
        s in protein_seq(1, 50),
        gap in gap_model(),
    ) {
        let local = Aligner::new(AlignConfig::local(gap, &BLOSUM62))
            .align(&q, &s).unwrap().score;
        let semi = Aligner::new(AlignConfig::semi_global(gap, &BLOSUM62))
            .align(&q, &s).unwrap().score;
        let global = Aligner::new(AlignConfig::global(gap, &BLOSUM62))
            .align(&q, &s).unwrap().score;
        prop_assert!(local >= semi, "local {local} < semi {semi}");
        prop_assert!(semi >= global, "semi {semi} < global {global}");
    }

    /// The traceback path re-scores to the reported score, for both
    /// kinds and all gap systems.
    #[test]
    fn traceback_rescoring_matches(
        q in protein_seq(1, 40),
        s in protein_seq(1, 40),
        gap in gap_model(),
        kind in prop_oneof![Just(AlignKind::Local), Just(AlignKind::Global), Just(AlignKind::SemiGlobal)],
    ) {
        let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
        let aln = traceback_align(&cfg, &q, &s);
        let kernel = Aligner::new(cfg.clone()).align(&q, &s).unwrap().score;
        prop_assert_eq!(aln.score, kernel);

        // Independent re-score of the emitted rows.
        let mut score = 0i32;
        let mut in_q_gap = false;
        let mut in_s_gap = false;
        for (&qc, &sc) in aln.query_row.iter().zip(&aln.subject_row) {
            if qc == b'-' {
                score += if in_q_gap { cfg.gap.beta() } else { cfg.gap.theta() + cfg.gap.beta() };
                in_q_gap = true; in_s_gap = false;
            } else if sc == b'-' {
                score += if in_s_gap { cfg.gap.beta() } else { cfg.gap.theta() + cfg.gap.beta() };
                in_s_gap = true; in_q_gap = false;
            } else {
                score += cfg.matrix.score(
                    PROTEIN.ctoi(sc).unwrap(),
                    PROTEIN.ctoi(qc).unwrap(),
                );
                in_q_gap = false; in_s_gap = false;
            }
        }
        if kind == AlignKind::Local && aln.query_row.is_empty() {
            prop_assert_eq!(aln.score, 0);
        } else {
            prop_assert_eq!(score, aln.score, "rescore mismatch");
        }
    }

    /// Global and semi-global alignments against an empty subject are
    /// exactly the boundary gap ramp.
    #[test]
    fn empty_subject_is_gap_ramp(q in protein_seq(1, 60), gap in gap_model()) {
        let s = Sequence::from_indices("empty", &PROTEIN, Vec::new());
        for cfg in [
            AlignConfig::global(gap, &BLOSUM62),
            AlignConfig::semi_global(gap, &BLOSUM62),
        ] {
            let out = Aligner::new(cfg).align(&q, &s).unwrap();
            prop_assert_eq!(out.score, gap.gap_score(q.len()));
        }
    }

    /// The conformance harness's pair enumeration is deterministic
    /// (two independent enumerations agree element-wise), canonical
    /// (length-ascending, then lexicographic), and complete (exactly
    /// Σ aᵏ sequences) — the properties the pinned baseline and the
    /// bit-exact differential comparison rest on.
    #[test]
    fn conformance_enumeration_is_deterministic_and_canonical(
        alphabet in 1u8..4,
        min_len in 0usize..3,
        extra in 0usize..3,
    ) {
        use aalign::core::conformance::enumerate_indices;
        let max_len = min_len + extra;
        let first = enumerate_indices(alphabet, min_len, max_len);
        let second = enumerate_indices(alphabet, min_len, max_len);
        prop_assert_eq!(&first, &second, "enumeration must be reproducible");
        for w in first.windows(2) {
            let ordered = w[0].len() < w[1].len()
                || (w[0].len() == w[1].len() && w[0] < w[1]);
            prop_assert!(ordered, "out of order: {:?} then {:?}", w[0], w[1]);
        }
        let want: usize = (min_len..=max_len)
            .map(|l| (alphabet as usize).pow(l as u32))
            .sum();
        prop_assert_eq!(first.len(), want);
        prop_assert!(first.iter().all(|s| s.iter().all(|&r| r < alphabet)));
    }

    /// A differential run over one configuration is itself
    /// deterministic: identical inputs produce an identical report
    /// (counters, skip counts, violations — everything `Eq` sees).
    #[test]
    fn conformance_config_reports_are_deterministic(
        kind in prop_oneof![
            Just(AlignKind::Local),
            Just(AlignKind::Global),
            Just(AlignKind::SemiGlobal),
        ],
        affine in any::<bool>(),
    ) {
        use aalign::bio::SubstMatrix;
        use aalign::core::conformance::{run_config, EnumBounds};
        let gap = if affine { GapModel::affine(-3, -1) } else { GapModel::linear(-2) };
        let matrix = SubstMatrix::dna(2, -3);
        let cfg = AlignConfig::new(kind, gap, &matrix);
        let bounds = EnumBounds { alphabet_size: 2, max_len: 2 };
        let a = run_config(&cfg, &bounds, None);
        let b = run_config(&cfg, &bounds, None);
        prop_assert_eq!(a, b);
    }
}
