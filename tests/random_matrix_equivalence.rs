//! Property tests with *random substitution matrices*, not just
//! BLOSUM62: the kernels' correctness must not depend on any property
//! of a particular score table beyond what the paradigm requires.

use aalign::bio::alphabet::PROTEIN;
use aalign::bio::{Sequence, SubstMatrix};
use aalign::core::paradigm::paradigm_dp;
use aalign::core::{inter_align_all, traceback_align};
use aalign::{AlignConfig, AlignKind, Aligner, GapModel, Strategy as AlignStrategy, WidthPolicy};
use proptest::prelude::*;

/// A random symmetric 24×24 matrix with scores in the i8-friendly
/// range BLAST-style matrices live in.
fn random_matrix() -> impl Strategy<Value = SubstMatrix> {
    proptest::collection::vec(-8i32..=12, 24 * 25 / 2).prop_map(|tri| {
        let mut scores = vec![0i32; 24 * 24];
        let mut it = tri.into_iter();
        for a in 0..24 {
            for b in a..24 {
                let v = it.next().unwrap();
                scores[a * 24 + b] = v;
                scores[b * 24 + a] = v;
            }
        }
        SubstMatrix::new("random", &PROTEIN, scores)
    })
}

fn protein_seq(min: usize, max: usize) -> impl Strategy<Value = Sequence> {
    proptest::collection::vec(0u8..24, min..=max)
        .prop_map(|idx| Sequence::from_indices("prop", &PROTEIN, idx))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every striped strategy on the default dispatch equals the
    /// scalar DP under an arbitrary matrix.
    #[test]
    fn striped_kernels_handle_arbitrary_matrices(
        matrix in random_matrix(),
        q in protein_seq(1, 50),
        s in protein_seq(0, 50),
        open in -12i32..=0,
        ext in -5i32..-1,
        kind in prop_oneof![
            Just(AlignKind::Local),
            Just(AlignKind::Global),
            Just(AlignKind::SemiGlobal),
        ],
    ) {
        let cfg = AlignConfig::new(kind, GapModel::affine(open, ext), &matrix);
        let want = paradigm_dp(&cfg, &q, &s).score;
        for strat in [AlignStrategy::StripedIterate, AlignStrategy::StripedScan, AlignStrategy::Hybrid] {
            let got = Aligner::new(cfg.clone())
                .with_strategy(strat)
                .with_width(WidthPolicy::Fixed32)
                .align(&q, &s)
                .unwrap();
            prop_assert_eq!(got.score, want, "{:?} {:?}", strat, kind);
        }
    }

    /// The inter-sequence kernel under arbitrary matrices.
    #[test]
    fn inter_kernel_handles_arbitrary_matrices(
        matrix in random_matrix(),
        q in protein_seq(1, 30),
        subjects in proptest::collection::vec(protein_seq(0, 30), 1..6),
        ext in -5i32..-1,
        kind in prop_oneof![
            Just(AlignKind::Local),
            Just(AlignKind::Global),
            Just(AlignKind::SemiGlobal),
        ],
    ) {
        let cfg = AlignConfig::new(kind, GapModel::linear(ext), &matrix);
        let refs: Vec<&Sequence> = subjects.iter().collect();
        let got = inter_align_all(cfg.table2(), &matrix, &q, &refs);
        for (l, s) in subjects.iter().enumerate() {
            prop_assert_eq!(got[l], paradigm_dp(&cfg, &q, s).score, "lane {}", l);
        }
    }

    /// Traceback rescoring under arbitrary matrices.
    #[test]
    fn traceback_handles_arbitrary_matrices(
        matrix in random_matrix(),
        q in protein_seq(1, 25),
        s in protein_seq(1, 25),
        open in -12i32..=0,
        ext in -5i32..-1,
    ) {
        let cfg = AlignConfig::local(GapModel::affine(open, ext), &matrix);
        let aln = traceback_align(&cfg, &q, &s);
        prop_assert_eq!(aln.score, paradigm_dp(&cfg, &q, &s).score);
    }
}
