//! Release-mode smoke test for the persistent [`SearchEngine`]: one
//! pool, several queries, metrics populated, threads spawned exactly
//! once. Run by CI as `cargo test --release --test engine_smoke`.

use aalign::bio::matrices::BLOSUM62;
use aalign::bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign::par::{search_database, SearchEngine, SearchOptions};
use aalign::{AlignConfig, Aligner, GapModel, Strategy};

#[test]
fn engine_serves_back_to_back_queries_from_one_pool() {
    let db = swissprot_like_db(2024, 60);
    let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62))
        .with_strategy(Strategy::Hybrid);
    let engine = SearchEngine::new(2);
    let mut rng = seeded_rng(2025);

    for query_no in 1..=3u64 {
        let query = named_query(&mut rng, 100 + 40 * query_no as usize);
        let opts = SearchOptions::new().top_n(5);
        let report = engine.search(&aligner, &query, &db, &opts).unwrap();

        // Hits match the one-shot wrapper bit for bit.
        let oneshot = search_database(&aligner, &query, &db, opts.clone().threads(2)).unwrap();
        assert_eq!(report.hits, oneshot.hits);
        assert_eq!(report.hits.len(), 5);

        // Metrics are populated...
        let m = &report.metrics;
        assert!(m.total >= m.sweep);
        assert!(m.gcups > 0.0);
        assert_eq!(
            m.cells,
            query.len() as u64 * report.total_residues as u64,
            "cells = query_len × db residues"
        );
        assert_eq!(m.workers(), 2);
        // ...and streaming top-k kept the buffers bounded.
        assert!(
            m.peak_hits_buffered <= 2 * 5,
            "peak {}",
            m.peak_hits_buffered
        );

        // The pool was reused, not respawned: every worker has served
        // exactly `query_no` queries over its lifetime.
        for w in &m.per_worker {
            assert!(w.worker_id < 2);
            assert_eq!(w.queries_on_worker, query_no);
            assert!(w.scratch_bytes > 0, "warm scratch is retained");
        }
    }
    assert_eq!(engine.queries_served(), 3);
}
