//! Integration tests driving the `aalign` CLI binary end to end.

use std::io::Write;
use std::process::Command;

fn aalign() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aalign"))
}

fn write_fasta(path: &std::path::Path, records: &[(&str, &str)]) {
    let mut f = std::fs::File::create(path).unwrap();
    for (id, body) in records {
        writeln!(f, ">{id}\n{body}").unwrap();
    }
}

#[test]
fn info_reports_isa_support() {
    let out = aalign().arg("info").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("vector ISA support"));
    assert!(text.contains("best backend for i32"));
}

#[test]
fn pair_alignment_with_traceback() {
    let dir = std::env::temp_dir().join("aalign_cli_pair");
    std::fs::create_dir_all(&dir).unwrap();
    write_fasta(&dir.join("q.fa"), &[("q", "HEAGAWGHEE")]);
    write_fasta(&dir.join("s.fa"), &[("s", "PAWHEAE")]);
    let out = aalign()
        .args([
            "pair",
            "--query",
            dir.join("q.fa").to_str().unwrap(),
            "--subject",
            dir.join("s.fa").to_str().unwrap(),
            "--traceback",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("score 17"), "{text}");
    assert!(text.contains("Query"), "{text}");
}

#[test]
fn gen_db_then_search_pipeline() {
    let dir = std::env::temp_dir().join("aalign_cli_search");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    let status = aalign()
        .args([
            "gen-db",
            "--count",
            "40",
            "--seed",
            "9",
            "--out",
            db.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());

    write_fasta(&dir.join("q.fa"), &[("q", "MKVLAARNDWHEAGAWGHEE")]);
    for mode in [&["--strategy", "hybrid"][..], &["--inter"][..]] {
        let out = aalign()
            .args([
                "search",
                "--query",
                dir.join("q.fa").to_str().unwrap(),
                "--db",
                db.to_str().unwrap(),
                "--top",
                "3",
            ])
            .args(mode)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("searched 40 subjects"), "{text}");
        assert_eq!(text.matches(" bits ").count(), 3, "{text}");
    }
}

#[test]
fn search_with_stats_prints_metrics_block() {
    let dir = std::env::temp_dir().join("aalign_cli_stats");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    let status = aalign()
        .args([
            "gen-db",
            "--count",
            "20",
            "--seed",
            "5",
            "--out",
            db.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());
    write_fasta(&dir.join("q.fa"), &[("q", "MKVLAARNDWHEAGAWGHEE")]);
    let out = aalign()
        .args([
            "search",
            "--query",
            dir.join("q.fa").to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
            "--top",
            "2",
            "--threads",
            "2",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("stats: prepare"), "{text}");
    assert!(text.contains("GCUPS"), "{text}");
    assert!(text.contains("kernel:"), "{text}");
    assert!(text.contains("worker   0:"), "{text}");
    assert_eq!(text.matches(" bits ").count(), 2, "{text}");
}

#[cfg(feature = "trace")]
#[test]
fn search_trace_out_then_trace_report_round_trip() {
    let dir = std::env::temp_dir().join("aalign_cli_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    let status = aalign()
        .args([
            "gen-db",
            "--count",
            "25",
            "--seed",
            "11",
            "--out",
            db.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());
    write_fasta(&dir.join("q.fa"), &[("q", "MKVLAARNDWHEAGAWGHEE")]);
    let trace = dir.join("trace.jsonl");
    let out = aalign()
        .args([
            "search",
            "--query",
            dir.join("q.fa").to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
            "--top",
            "3",
            "--stats",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("trace events"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The file is line-delimited JSON: every line parses, and the
    // stream reconstructs into one reconciled query envelope.
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        text.lines().count() > 25,
        "one envelope per subject at least"
    );
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }

    let out = aalign()
        .args([
            "trace-report",
            "--trace",
            trace.to_str().unwrap(),
            "--subjects",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("query \"q\""), "{report}");
    assert!(report.contains("subjects traced: 25"), "{report}");
    assert!(report.contains("stages:"), "{report}");
    assert!(!report.contains("UNRECONCILED"), "{report}");
}

#[test]
fn search_rejects_trace_out_with_inter() {
    let dir = std::env::temp_dir().join("aalign_cli_trace_inter");
    std::fs::create_dir_all(&dir).unwrap();
    write_fasta(&dir.join("q.fa"), &[("q", "HEAGAWGHEE")]);
    write_fasta(&dir.join("db.fa"), &[("s", "PAWHEAE")]);
    let out = aalign()
        .args([
            "search",
            "--query",
            dir.join("q.fa").to_str().unwrap(),
            "--db",
            dir.join("db.fa").to_str().unwrap(),
            "--inter",
            "--trace-out",
            dir.join("t.jsonl").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--inter"), "{err}");
}

#[test]
fn search_metrics_formats() {
    let dir = std::env::temp_dir().join("aalign_cli_metrics_fmt");
    std::fs::create_dir_all(&dir).unwrap();
    write_fasta(&dir.join("q.fa"), &[("q", "MKVLAARNDWHEAGAWGHEE")]);
    write_fasta(
        &dir.join("db.fa"),
        &[("a", "MKVLAARNDW"), ("b", "HEAGAWGHEE"), ("c", "PAWHEAE")],
    );
    let run = |fmt: &str| {
        aalign()
            .args([
                "search",
                "--query",
                dir.join("q.fa").to_str().unwrap(),
                "--db",
                dir.join("db.fa").to_str().unwrap(),
                "--metrics-format",
                fmt,
            ])
            .output()
            .unwrap()
    };
    let json = run("json");
    assert!(json.status.success());
    let text = String::from_utf8(json.stdout).unwrap();
    assert!(text.contains("\"gcups\":"), "{text}");
    assert!(text.contains("\"latency_ns\":"), "{text}");

    let prom = run("prom");
    assert!(prom.status.success());
    let text = String::from_utf8(prom.stdout).unwrap();
    assert!(text.contains("# TYPE aalign_gcups gauge"), "{text}");
    assert!(text.contains("aalign_work_item_seconds_bucket"), "{text}");

    let bad = run("xml");
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("unknown metrics format"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
}

#[test]
fn trace_report_rejects_junk_input() {
    let dir = std::env::temp_dir().join("aalign_cli_trace_junk");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("junk.jsonl");
    std::fs::write(
        &path,
        "{\"ev\":\"query_begin\",\"query\":\"q\",\"subjects\":1}\nnot json\n",
    )
    .unwrap();
    let out = aalign()
        .args(["trace-report", "--trace", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains(":2:"),
        "parse errors carry line numbers: {err}"
    );
}

#[test]
fn codegen_emits_rust_module() {
    let dir = std::env::temp_dir().join("aalign_cli_codegen");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("kernel.seq");
    std::fs::write(
        &input,
        r#"
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        L[i][j] = max(L[i-1][j] + GAP_EXT, T[i-1][j] + GAP_OPEN);
        U[i][j] = max(U[i][j-1] + GAP_EXT, T[i][j-1] + GAP_OPEN);
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(0, L[i][j], U[i][j], D[i][j]);
    }
}
"#,
    )
    .unwrap();
    let out = aalign()
        .args(["codegen", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("pub const LOCAL: bool = true;"), "{text}");
    assert!(text.contains("fn sw_aff_iterate"), "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = aalign().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"));
}

#[test]
fn missing_required_flag_fails() {
    let out = aalign().args(["pair", "--query"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn search_with_zero_timeout_reports_partial_results() {
    let dir = std::env::temp_dir().join("aalign_cli_timeout");
    std::fs::create_dir_all(&dir).unwrap();
    write_fasta(&dir.join("q.fa"), &[("q", "HEAGAWGHEE")]);
    write_fasta(
        &dir.join("db.fa"),
        &[("a", "PAWHEAE"), ("b", "HEAGAWGHEE"), ("c", "MKVLAARND")],
    );
    let out = aalign()
        .args([
            "search",
            "--query",
            dir.join("q.fa").to_str().unwrap(),
            "--db",
            dir.join("db.fa").to_str().unwrap(),
            "--timeout",
            "0",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "a deadline is a degraded mode, not a failure: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("partial results"), "{err}");
    assert!(err.contains("deadline"), "{err}");
    // The CLI emits the same versioned partial wire object a serve
    // front end returns for a deadline-expired request.
    let wire = err
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("partial reports include the wire document");
    assert!(wire.contains("\"schema_version\":1"), "{wire}");
    assert!(wire.contains("\"partial\":true"), "{wire}");
    assert!(wire.contains("\"code\":\"deadline_exceeded\""), "{wire}");
}

#[test]
fn serve_http_smoke_search_then_graceful_shutdown() {
    use std::io::{BufRead, BufReader, Read};

    let dir = std::env::temp_dir().join("aalign_cli_serve_http");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    assert!(aalign()
        .args([
            "gen-db",
            "--count",
            "30",
            "--seed",
            "3",
            "--out",
            db.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());

    let mut daemon = aalign()
        .args([
            "serve",
            "--db",
            db.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // The daemon announces its bound address on stdout.
    let mut stdout = BufReader::new(daemon.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("banner names the listen address")
        .to_string();

    let http = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status = response
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.split_whitespace().next())
            .and_then(|c| c.parse().ok())
            .unwrap();
        let payload = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    };

    let (status, body) = http("GET", "/v1/health", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema_version\":1"), "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, body) = http(
        "POST",
        "/v1/search",
        "{\"query\":\"MKVLAARNDWHEAGAWGHEE\",\"top_n\":3}",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"schema_version\":1"), "{body}");
    assert!(body.contains("\"partial\":false"), "{body}");
    assert!(body.contains("\"hits\":["), "{body}");

    // Graceful shutdown over the wire: the process drains and exits 0.
    let (status, body) = http("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\":true"), "{body}");
    let out = daemon.wait_with_output().unwrap();
    assert!(out.status.success(), "daemon must exit clean after drain");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("drained cleanly"), "{err}");
}

#[test]
fn serve_stdio_smoke_json_rpc_round_trip() {
    let dir = std::env::temp_dir().join("aalign_cli_serve_stdio");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    assert!(aalign()
        .args([
            "gen-db",
            "--count",
            "20",
            "--seed",
            "4",
            "--out",
            db.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());

    let mut daemon = aalign()
        .args([
            "serve",
            "--db",
            db.to_str().unwrap(),
            "--stdio",
            "--threads",
            "2",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = daemon.stdin.take().unwrap();
    let search = r#"{"jsonrpc":"2.0","id":1,"method":"search","params":{"query":"MKVLAARNDWHEAGAWGHEE","top_n":2}}"#;
    let health = r#"{"jsonrpc":"2.0","id":2,"method":"health"}"#;
    writeln!(stdin, "{search}").unwrap();
    writeln!(stdin, "{health}").unwrap();
    drop(stdin); // EOF ends the session; the daemon drains and exits.

    let out = daemon.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"jsonrpc\":\"2.0\""), "{}", lines[0]);
    assert!(lines[0].contains("\"schema_version\":1"), "{}", lines[0]);
    assert!(lines[0].contains("\"hits\":["), "{}", lines[0]);
    assert!(lines[1].contains("\"status\":\"ok\""), "{}", lines[1]);
    assert!(String::from_utf8_lossy(&out.stderr).contains("drained cleanly"));
}

/// Regression: a `shutdown` RPC must produce a complete final reply
/// line and a clean exit *while the supervisor still holds stdin
/// open*. (The shard supervisor relies on this — it reads the
/// shutdown acknowledgement before sending SIGTERM, so the daemon
/// must not wait for EOF to flush and exit.)
#[test]
fn serve_stdio_shutdown_flushes_reply_with_stdin_still_open() {
    let dir = std::env::temp_dir().join("aalign_cli_stdio_shutdown");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    assert!(aalign()
        .args([
            "gen-db",
            "--count",
            "10",
            "--seed",
            "9",
            "--out",
            db.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());

    let mut daemon = aalign()
        .args(["serve", "--db", db.to_str().unwrap(), "--stdio"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = daemon.stdin.take().unwrap();
    writeln!(stdin, r#"{{"jsonrpc":"2.0","id":1,"method":"health"}}"#).unwrap();
    writeln!(stdin, r#"{{"jsonrpc":"2.0","id":2,"method":"shutdown"}}"#).unwrap();
    stdin.flush().unwrap();
    // Deliberately keep `stdin` alive: the daemon must exit on its
    // own after acknowledging shutdown, without seeing EOF first.
    let out = daemon.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    drop(stdin); // released only after the daemon has already exited
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"status\":\"ok\""), "{}", lines[0]);
    assert!(lines[1].contains("\"draining\":true"), "{}", lines[1]);
    assert!(
        lines[1].ends_with('}'),
        "shutdown reply must be a complete JSON line: {:?}",
        lines[1]
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("drained cleanly"));
}

/// End-to-end chaos pin at the CLI layer: `shard-search` with an
/// unlimited kill plan degrades to a partial answer naming the dead
/// shard's exact uncovered range, and still exits zero.
#[cfg(feature = "fault-inject")]
#[test]
fn shard_search_cli_degrades_with_exact_uncovered_range_under_kill_plan() {
    let dir = std::env::temp_dir().join("aalign_cli_shard_chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    let query = dir.join("q.fa");
    assert!(aalign()
        .args([
            "gen-db",
            "--count",
            "40",
            "--seed",
            "3",
            "--out",
            db.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    write_fasta(&query, &[("q1", "MKVLAARNDWHEAGAWGHEEAEKLFTQ")]);

    let out = aalign()
        .args([
            "shard-search",
            "--query",
            query.to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
            "--shards",
            "4",
            "--top",
            "3",
            "--shard-fault",
            "kill@1",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    // 40 subjects over 4 shards → shard 1 owns exactly [10, 20).
    assert!(
        stderr.contains("shard 1 lost; database range [10, 20) is uncovered"),
        "{stderr}"
    );
    assert!(stderr.contains("partial results"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shards: 3 ok, 1 failed"), "{stdout}");
}

#[test]
fn search_rescues_a_saturating_subject_at_fixed8() {
    let dir = std::env::temp_dir().join("aalign_cli_rescue");
    std::fs::create_dir_all(&dir).unwrap();
    let w = "W".repeat(100);
    write_fasta(&dir.join("q.fa"), &[("q", w.as_str())]);
    write_fasta(
        &dir.join("db.fa"),
        &[("hot", w.as_str()), ("cold", "PAWHEAE")],
    );
    let qpath = dir.join("q.fa");
    let dbpath = dir.join("db.fa");
    let common = [
        "search",
        "--query",
        qpath.to_str().unwrap(),
        "--db",
        dbpath.to_str().unwrap(),
        "--width",
        "8",
    ];
    let out = aalign().args(common).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // W·W = 11 in BLOSUM62: the exact 100-residue self-match score is
    // 1100, far past i8 — only the rescue path can print it.
    assert!(text.contains("rescued 1 lane-saturated subject"), "{text}");
    assert!(text.contains("score   1100"), "{text}");
    // Opting out keeps the clamped narrow score and says nothing.
    let out = aalign().args(common).arg("--no-rescue").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!text.contains("rescued"), "{text}");
    assert!(!text.contains("score   1100"), "{text}");
}

#[test]
fn fault_plan_flag_requires_the_feature_or_a_valid_spec() {
    let dir = std::env::temp_dir().join("aalign_cli_faultplan");
    std::fs::create_dir_all(&dir).unwrap();
    write_fasta(&dir.join("q.fa"), &[("q", "HEAGAWGHEE")]);
    write_fasta(&dir.join("db.fa"), &[("a", "PAWHEAE")]);
    let out = aalign()
        .args([
            "search",
            "--query",
            dir.join("q.fa").to_str().unwrap(),
            "--db",
            dir.join("db.fa").to_str().unwrap(),
            "--fault-plan",
            "panic@0",
        ])
        .output()
        .unwrap();
    let err = String::from_utf8(out.stderr).unwrap();
    if cfg!(feature = "fault-inject") {
        // Plan accepted: the scripted panic surfaces as a partial
        // report, not a crash.
        assert!(out.status.success(), "{err}");
        assert!(err.contains("partial results"), "{err}");
    } else {
        assert!(!out.status.success());
        assert!(err.contains("fault-inject"), "{err}");
    }
}
