//! Integration tests driving the `aalign` CLI binary end to end.

use std::io::Write;
use std::process::Command;

fn aalign() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aalign"))
}

fn write_fasta(path: &std::path::Path, records: &[(&str, &str)]) {
    let mut f = std::fs::File::create(path).unwrap();
    for (id, body) in records {
        writeln!(f, ">{id}\n{body}").unwrap();
    }
}

#[test]
fn info_reports_isa_support() {
    let out = aalign().arg("info").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("vector ISA support"));
    assert!(text.contains("best backend for i32"));
}

#[test]
fn pair_alignment_with_traceback() {
    let dir = std::env::temp_dir().join("aalign_cli_pair");
    std::fs::create_dir_all(&dir).unwrap();
    write_fasta(&dir.join("q.fa"), &[("q", "HEAGAWGHEE")]);
    write_fasta(&dir.join("s.fa"), &[("s", "PAWHEAE")]);
    let out = aalign()
        .args([
            "pair",
            "--query",
            dir.join("q.fa").to_str().unwrap(),
            "--subject",
            dir.join("s.fa").to_str().unwrap(),
            "--traceback",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("score 17"), "{text}");
    assert!(text.contains("Query"), "{text}");
}

#[test]
fn gen_db_then_search_pipeline() {
    let dir = std::env::temp_dir().join("aalign_cli_search");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    let status = aalign()
        .args([
            "gen-db",
            "--count",
            "40",
            "--seed",
            "9",
            "--out",
            db.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());

    write_fasta(&dir.join("q.fa"), &[("q", "MKVLAARNDWHEAGAWGHEE")]);
    for mode in [&["--strategy", "hybrid"][..], &["--inter"][..]] {
        let out = aalign()
            .args([
                "search",
                "--query",
                dir.join("q.fa").to_str().unwrap(),
                "--db",
                db.to_str().unwrap(),
                "--top",
                "3",
            ])
            .args(mode)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("searched 40 subjects"), "{text}");
        assert_eq!(text.matches(" bits ").count(), 3, "{text}");
    }
}

#[test]
fn search_with_stats_prints_metrics_block() {
    let dir = std::env::temp_dir().join("aalign_cli_stats");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.fa");
    let status = aalign()
        .args([
            "gen-db",
            "--count",
            "20",
            "--seed",
            "5",
            "--out",
            db.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());
    write_fasta(&dir.join("q.fa"), &[("q", "MKVLAARNDWHEAGAWGHEE")]);
    let out = aalign()
        .args([
            "search",
            "--query",
            dir.join("q.fa").to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
            "--top",
            "2",
            "--threads",
            "2",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("stats: prepare"), "{text}");
    assert!(text.contains("GCUPS"), "{text}");
    assert!(text.contains("kernel:"), "{text}");
    assert!(text.contains("worker   0:"), "{text}");
    assert_eq!(text.matches(" bits ").count(), 2, "{text}");
}

#[test]
fn codegen_emits_rust_module() {
    let dir = std::env::temp_dir().join("aalign_cli_codegen");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("kernel.seq");
    std::fs::write(
        &input,
        r#"
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        L[i][j] = max(L[i-1][j] + GAP_EXT, T[i-1][j] + GAP_OPEN);
        U[i][j] = max(U[i][j-1] + GAP_EXT, T[i][j-1] + GAP_OPEN);
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(0, L[i][j], U[i][j], D[i][j]);
    }
}
"#,
    )
    .unwrap();
    let out = aalign()
        .args(["codegen", "--input", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("pub const LOCAL: bool = true;"), "{text}");
    assert!(text.contains("fn sw_aff_iterate"), "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = aalign().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"));
}

#[test]
fn missing_required_flag_fails() {
    let out = aalign().args(["pair", "--query"]).output().unwrap();
    assert!(!out.status.success());
}
