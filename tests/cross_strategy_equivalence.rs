//! The central integration property: every execution path — scalar
//! references, optimized sequential, striped-iterate, striped-scan,
//! hybrid, on every ISA and element width — produces the same score.

use aalign::bio::matrices::BLOSUM62;
use aalign::bio::Sequence;
use aalign::core::paradigm::{paradigm_dp, paradigm_literal};
use aalign::vec::detect::Isa;
use aalign::{AlignConfig, AlignKind, Aligner, GapModel, Strategy as AlignStrategy, WidthPolicy};
use proptest::prelude::*;

/// Random protein residue indices (the 20 standard amino acids).
fn protein_seq(max_len: usize) -> impl Strategy<Value = Sequence> {
    proptest::collection::vec(0u8..20, 1..=max_len)
        .prop_map(|idx| Sequence::from_indices("prop", &aalign::bio::alphabet::PROTEIN, idx))
}

fn gap_model() -> impl Strategy<Value = GapModel> {
    prop_oneof![
        (-15i32..=0, -6i32..-1).prop_map(|(open, ext)| GapModel::affine(open, ext)),
        (-6i32..-1).prop_map(GapModel::linear),
    ]
}

fn align_kind() -> impl Strategy<Value = AlignKind> {
    prop_oneof![
        Just(AlignKind::Local),
        Just(AlignKind::Global),
        Just(AlignKind::SemiGlobal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_strategies_and_isas_agree(
        q in protein_seq(80),
        s in protein_seq(80),
        gap in gap_model(),
        kind in align_kind(),
    ) {
        let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
        let want = paradigm_dp(&cfg, &q, &s).score;

        // Sequential baseline.
        let seq = Aligner::new(cfg.clone())
            .with_strategy(AlignStrategy::Sequential)
            .align(&q, &s)
            .unwrap();
        prop_assert_eq!(seq.score, want);

        for strat in [AlignStrategy::StripedIterate, AlignStrategy::StripedScan, AlignStrategy::Hybrid] {
            for isa in [Isa::Emulated, Isa::Sse41, Isa::Avx2, Isa::Avx512] {
                let out = Aligner::new(cfg.clone())
                    .with_strategy(strat)
                    .with_isa(isa)
                    .with_width(WidthPolicy::Fixed32)
                    .align(&q, &s)
                    .unwrap();
                prop_assert_eq!(
                    out.score, want,
                    "strategy {:?} isa {:?} backend {}", strat, isa, out.backend
                );
            }
        }
    }

    #[test]
    fn literal_paradigm_agrees_with_dp(
        q in protein_seq(24),
        s in protein_seq(24),
        gap in gap_model(),
        kind in align_kind(),
    ) {
        let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
        prop_assert_eq!(
            paradigm_literal(&cfg, &q, &s).score,
            paradigm_dp(&cfg, &q, &s).score
        );
    }

    /// Larger-bound literal ≡ dp, focused on the affine + global
    /// corner: the general test above stays at length 24 because the
    /// Eq.(2) literal scan is cubic, but affine global alignments are
    /// where long gap chains and the U/L fold actually diverge if the
    /// rewrite is wrong, so push those to length 64.
    #[test]
    fn literal_agrees_with_dp_affine_global_at_larger_lengths(
        q in proptest::collection::vec(0u8..20, 32..=64)
            .prop_map(|idx| Sequence::from_indices("prop", &aalign::bio::alphabet::PROTEIN, idx)),
        s in proptest::collection::vec(0u8..20, 32..=64)
            .prop_map(|idx| Sequence::from_indices("prop", &aalign::bio::alphabet::PROTEIN, idx)),
        (open, ext) in (-15i32..=0, -6i32..-1),
        kind in prop_oneof![Just(AlignKind::Global), Just(AlignKind::SemiGlobal)],
    ) {
        let cfg = AlignConfig::new(kind, GapModel::affine(open, ext), &BLOSUM62);
        prop_assert_eq!(
            paradigm_literal(&cfg, &q, &s).score,
            paradigm_dp(&cfg, &q, &s).score
        );
    }

    #[test]
    fn auto_width_always_matches_fixed32(
        q in protein_seq(60),
        s in protein_seq(60),
        gap in gap_model(),
        kind in align_kind(),
    ) {
        let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
        let auto = Aligner::new(cfg.clone())
            .align(&q, &s)
            .unwrap();
        let fixed = Aligner::new(cfg)
            .with_width(WidthPolicy::Fixed32)
            .align(&q, &s)
            .unwrap();
        prop_assert!(!auto.saturated);
        prop_assert_eq!(auto.score, fixed.score, "auto used {}", auto.backend);
    }

    #[test]
    fn linear_equals_affine_with_zero_theta(
        q in protein_seq(50),
        s in protein_seq(50),
        ext in -6i32..-1,
        kind in align_kind(),
    ) {
        let lin = AlignConfig::new(kind, GapModel::linear(ext), &BLOSUM62);
        let aff = AlignConfig::new(kind, GapModel::affine(0, ext), &BLOSUM62);
        let a = Aligner::new(lin).align(&q, &s).unwrap().score;
        let b = Aligner::new(aff).align(&q, &s).unwrap().score;
        prop_assert_eq!(a, b);
    }
}
