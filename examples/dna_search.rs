//! DNA search across both strands.
//!
//! Protein search dominates the paper, but the paradigm is
//! alphabet-agnostic: this example aligns a DNA probe against a
//! genome fragment on the forward *and* reverse-complement strands,
//! using a match/mismatch matrix — the everyday primer/probe check.
//!
//! Run: `cargo run --release --example dna_search`

use aalign::bio::synth::seeded_rng;
use aalign::bio::{Sequence, SubstMatrix};
use aalign::core::traceback::traceback_align;
use aalign::{AlignConfig, Aligner, GapModel};
use rand::RngExt;

fn random_dna(rng: &mut impl rand::Rng, id: &str, len: usize) -> Sequence {
    let idx: Vec<u8> = (0..len).map(|_| rng.random_range(0..4u8)).collect();
    Sequence::from_indices(id, &aalign::bio::alphabet::DNA, idx)
}

fn main() {
    let mut rng = seeded_rng(99);
    let genome = random_dna(&mut rng, "fragment", 5000);

    // Cut a probe from the genome… and flip it to the opposite strand
    // with 3 % mutations, so only the reverse-complement search can
    // find it.
    let start = 3210;
    let probe_template = Sequence::from_indices(
        "window",
        genome.alphabet(),
        genome.indices()[start..start + 60].to_vec(),
    );
    let mutated: Vec<u8> = probe_template
        .reverse_complement()
        .indices()
        .iter()
        .map(|&b| {
            if rng.random_bool(0.97) {
                b
            } else {
                rng.random_range(0..4u8)
            }
        })
        .collect();
    let probe = Sequence::from_indices("probe", genome.alphabet(), mutated);

    // EDNAFULL-style scoring: +5 match, −4 mismatch, affine gaps.
    let matrix = SubstMatrix::dna(5, -4);
    let cfg = AlignConfig::semi_global(GapModel::affine(-10, -2), &matrix);
    let aligner = Aligner::new(cfg.clone());

    let fwd = aligner.align(&probe, &genome).unwrap();
    let rc_probe = probe.reverse_complement();
    let rev = aligner.align(&rc_probe, &genome).unwrap();

    println!(
        "probe of {} nt vs {} nt fragment:",
        probe.len(),
        genome.len()
    );
    println!("  forward strand score : {}", fwd.score);
    println!("  reverse strand score : {}", rev.score);
    let (strand, best_query) = if rev.score >= fwd.score {
        ("reverse", &rc_probe)
    } else {
        ("forward", &probe)
    };
    assert_eq!(
        strand, "reverse",
        "the probe was planted on the minus strand"
    );

    let aln = traceback_align(&cfg, best_query, &genome);
    println!(
        "\nbest hit on the {strand} strand at {}..{} (planted at {start}..{}):",
        aln.subject_span.0,
        aln.subject_span.1,
        start + 60
    );
    println!(
        "  cigar {}  identity {:.1}%",
        aln.cigar_classic(),
        aln.identity * 100.0
    );
    assert!(aln.subject_span.0.abs_diff(start) <= 3);
    println!("\nfound the planted probe on the correct strand.");
}
