//! Read mapping: the extension features working together.
//!
//! Simulates "reads" (fragments of a reference with sequencing
//! errors), locates each in a reference database with semi-global
//! alignment, reports CIGAR strings and E-values, and shows banded
//! re-scoring matching the full kernels at a fraction of the cells.
//!
//! Run: `cargo run --release --example read_mapping`

use aalign::bio::matrices::BLOSUM62;
use aalign::bio::stats::{bit_score, evalue, ungapped_lambda, KarlinParams, ROBINSON_FREQS};
use aalign::bio::synth::{random_protein, random_residue, seeded_rng};
use aalign::bio::Sequence;
use aalign::core::banded::banded_align_certified;
use aalign::core::traceback::traceback_align;
use aalign::{AlignConfig, Aligner, GapModel};
use rand::RngExt;

fn main() {
    let mut rng = seeded_rng(2024);

    // A "reference" protein and reads cut from it with 5 % errors.
    let reference = random_protein(&mut rng, "reference", 2000);
    let mut reads = Vec::new();
    for r in 0..5 {
        let start = rng.random_range(0usize..1800);
        let len = rng.random_range(60usize..140);
        let read: Vec<u8> = reference.indices()[start..start + len]
            .iter()
            .map(|&res| {
                if rng.random_bool(0.95) {
                    res
                } else {
                    random_residue(&mut rng)
                }
            })
            .collect();
        reads.push((
            start,
            Sequence::from_indices(format!("read{r}"), reference.alphabet(), read),
        ));
    }

    // Semi-global: each read must align end to end, the reference's
    // ends are free — exactly the mapping semantics.
    let cfg = AlignConfig::semi_global(GapModel::affine(-10, -2), &BLOSUM62);
    let aligner = Aligner::new(cfg.clone());

    // Statistics: exact ungapped λ for BLOSUM62 plus the standard
    // gapped K (see bio::stats docs).
    let lambda = ungapped_lambda(&BLOSUM62, &ROBINSON_FREQS).unwrap();
    let params = KarlinParams { lambda, k: 0.041 };
    println!("BLOSUM62 ungapped lambda = {lambda:.4}\n");

    for (true_start, read) in &reads {
        let out = aligner.align(read, &reference).unwrap();
        let aln = traceback_align(&cfg, read, &reference);
        assert_eq!(out.score, aln.score);

        // Banded verification, the read-mapper pattern: the
        // semi-global hit *locates* the candidate window; a banded
        // global alignment against just that window then verifies it
        // cheaply. (Banding needs a near-diagonal path, which the
        // window guarantees — the whole reference does not.)
        let window = Sequence::from_indices(
            "window",
            reference.alphabet(),
            reference.indices()[aln.subject_span.0..aln.subject_span.1].to_vec(),
        );
        let verify_cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let banded = banded_align_certified(&verify_cfg, read, &window, 8);
        let full_cells = read.len() * reference.len();

        let bits = bit_score(out.score, params);
        println!(
            "{}: mapped to {}..{} (true start {true_start}), score {}, {:.1} bits, E = {:.1e}",
            read.id(),
            aln.subject_span.0,
            aln.subject_span.1,
            out.score,
            bits,
            evalue(bits, read.len(), reference.len()),
        );
        println!("  cigar: {}", aln.cigar_classic());
        println!(
            "  banded window verify: score {} with {} cells ({:.2}% of a full-reference DP)\n",
            banded.score,
            banded.cells,
            100.0 * banded.cells as f64 / full_cells as f64
        );
        // The mapping must land on (or very near) the true origin.
        assert!(
            aln.subject_span.0.abs_diff(*true_start) <= 5,
            "read mapped to {} but was cut from {true_start}",
            aln.subject_span.0
        );
    }
    println!("all reads mapped back to their true origins.");
}
