//! Similarity sweep: Fig. 10 in miniature.
//!
//! Generates the nine QC_MI subject classes for one query and shows,
//! per class, how much correction work striped-iterate does (lazy
//! sweeps per column), which strategy wins, and that the hybrid's
//! runtime switching tracks the winner.
//!
//! Run: `cargo run --release --example similarity_sweep`

use std::time::Instant;

use aalign::bio::matrices::BLOSUM62;
use aalign::bio::synth::{named_query, nine_similarity_specs, seeded_rng};
use aalign::{AlignConfig, AlignScratch, Aligner, GapModel, Strategy, WidthPolicy};

fn main() {
    let mut rng = seeded_rng(10);
    let query = named_query(&mut rng, 1000);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let make = |s: Strategy| {
        Aligner::new(cfg.clone())
            .with_strategy(s)
            .with_width(WidthPolicy::Fixed32)
    };
    let iterate = make(Strategy::StripedIterate);
    let scan = make(Strategy::StripedScan);
    let hybrid = make(Strategy::Hybrid);
    let pq_it = iterate.prepare(&query).unwrap();
    let pq_sc = scan.prepare(&query).unwrap();
    let pq_hy = hybrid.prepare(&query).unwrap();
    let mut scratch = AlignScratch::new();

    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>12} {:>9} {:>14}",
        "QC_MI", "score", "iterate ms", "scan ms", "hybrid ms", "winner", "sweeps/column"
    );
    for spec in nine_similarity_specs() {
        let pair = spec.generate(&mut rng, &query);
        let s = &pair.subject;

        let mut time = |al: &Aligner, pq| {
            // Median of 3.
            let mut ts: Vec<f64> = (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    let out = al.align_prepared(pq, s, &mut scratch).unwrap();
                    let dt = t0.elapsed().as_secs_f64() * 1e3;
                    (dt, out)
                })
                .map(|(dt, _)| dt)
                .collect();
            ts.sort_by(f64::total_cmp);
            ts[1]
        };
        let t_it = time(&iterate, &pq_it);
        let t_sc = time(&scan, &pq_sc);
        let t_hy = time(&hybrid, &pq_hy);

        let out = iterate.align_prepared(&pq_it, s, &mut scratch).unwrap();
        let sweeps = out.stats.lazy_sweeps as f64 / out.stats.iterate_columns.max(1) as f64;
        println!(
            "{:<8} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>9} {:>14.2}",
            spec.label(),
            out.score,
            t_it,
            t_sc,
            t_hy,
            if t_it <= t_sc { "iterate" } else { "scan" },
            sweeps,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 10): scan wins where coverage+identity are high\n\
         (more lazy sweeps per column), iterate wins on dissimilar pairs, and the\n\
         hybrid column stays close to the winner everywhere."
    );
}
