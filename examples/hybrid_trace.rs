//! Hybrid switching trace — the paper's Fig. 5 scenario.
//!
//! Builds a subject with a dissimilar head, a near-identical middle
//! (a copy of the query) and a dissimilar tail, then plots — as an
//! ASCII strip — which strategy the hybrid used for every subject
//! column and how many lazy sweeps the iterate columns cost.
//!
//! Run: `cargo run --release --example hybrid_trace`

use aalign::bio::matrices::BLOSUM62;
use aalign::bio::synth::{named_query, random_protein, seeded_rng};
use aalign::bio::{Sequence, StripedProfile};
use aalign::core::striped::{hybrid_align, StrategyChoice};
use aalign::core::{HybridPolicy, Workspace};
use aalign::vec::EmuEngine;
use aalign::{AlignConfig, GapModel};

fn main() {
    let mut rng = seeded_rng(5);
    let query = named_query(&mut rng, 400);

    // head (400 random) + middle (the query itself) + tail (400 random)
    let head = random_protein(&mut rng, "head", 400);
    let tail = random_protein(&mut rng, "tail", 400);
    let mut idx = Vec::new();
    idx.extend_from_slice(head.indices());
    idx.extend_from_slice(query.indices());
    idx.extend_from_slice(tail.indices());
    let subject = Sequence::from_indices("head+copy+tail", query.alphabet(), idx);

    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let policy = HybridPolicy {
        threshold: 2,
        probe_stride: 64,
    };
    let prof = StripedProfile::<i32>::build(&query, &cfg.matrix, 16);
    let mut ws = Workspace::new();
    let rep = hybrid_align::<_, true, true>(
        EmuEngine::<i32, 16>::new(),
        &prof,
        subject.indices(),
        cfg.table2(),
        policy,
        &mut ws,
        true, // record the per-column trace
    );

    println!(
        "subject: {} columns (similar region at 400..800), threshold={}, stride={}",
        subject.len(),
        policy.threshold,
        policy.probe_stride
    );
    println!("score: {}\n", rep.result.score);

    // One character per column: '.' cheap iterate, digit = iterate
    // with that many lazy sweeps, 's' = scan column.
    println!("per-column strategy strip (80 columns/row):");
    let strip: String = rep
        .trace
        .iter()
        .map(|ev| match ev {
            StrategyChoice::Iterate(0) => '.',
            StrategyChoice::Iterate(n) => char::from_digit((*n).min(9), 10).unwrap_or('9'),
            StrategyChoice::Scan => 's',
        })
        .collect();
    for (i, chunk) in strip.as_bytes().chunks(80).enumerate() {
        println!("{:>5} {}", i * 80, String::from_utf8_lossy(chunk));
    }

    println!(
        "\nswitches to scan: {}   probes that stayed in iterate: {}",
        rep.switches_to_scan, rep.probes_stayed
    );
    println!(
        "iterate columns: {}   scan columns: {}   total lazy sweeps: {}",
        rep.result.iterate_columns, rep.result.scan_columns, rep.result.lazy_sweeps
    );
    println!(
        "\nExpected shape (paper Fig. 5): '.' in the head, a burst of digits\n\
         triggering 's' runs across the similar middle, probes ('.'/digits)\n\
         every {} columns, and '.' again through the tail.",
        policy.probe_stride
    );
}
