//! Code-translation demo: the AAlign framework pipeline end to end.
//!
//! Takes the paper's Alg. 1 (sequential Smith-Waterman, affine gaps)
//! as *text*, parses it, analyzes the AST per Sec. V-D, proves its
//! conformance obligations and differential-tests the bound spec
//! ("verify, then generate" — DESIGN.md §12), prints the extracted
//! configuration, emits the specialized Rust kernel source, and
//! finally runs the extracted configuration through the vector
//! kernels to show it scores identically to a hand-built one.
//!
//! Run: `cargo run --release --example codegen_demo`

use aalign::bio::matrices::BLOSUM62;
use aalign::bio::synth::{named_query, seeded_rng};
use aalign::codegen::emit::GapBindings;
use aalign::codegen::{
    analyze, emit_rust_kernel, parse_program, spec_to_config, ALG1_SMITH_WATERMAN_AFFINE,
};
use aalign::core::conformance::EnumBounds;
use aalign::{AlignConfig, Aligner, GapModel, Strategy};
use aalign_analyzer::{prove_kernel, verify_spec};

fn main() {
    println!("== input sequential kernel (paper Alg. 1) ==");
    println!("{ALG1_SMITH_WATERMAN_AFFINE}");

    // 1. Parse.
    let ast = parse_program(ALG1_SMITH_WATERMAN_AFFINE).expect("parses");
    println!("parsed {} top-level statements\n", ast.len());

    // 2. Analyze (the paper's four extraction steps).
    let spec = analyze(&ast).expect("follows the generalized paradigm");
    println!("== extracted kernel spec ==");
    println!(
        "  kind        : {}",
        if spec.local {
            "local (SW)"
        } else {
            "global (NW)"
        }
    );
    println!(
        "  gap system  : {}",
        if spec.affine { "affine" } else { "linear" }
    );
    println!("  matrix      : {}", spec.matrix_name);
    println!(
        "  sequences   : query={} subject={}",
        spec.query_name, spec.subject_name
    );
    println!(
        "  constants   : open={:?} ext={}",
        spec.gap_open_name, spec.gap_ext_name
    );
    println!();

    // 3. Verify, then generate (DESIGN.md §12): symbolically prove the
    //    Eq.(2)→Eq.(3–6) rewrite obligations on the recurrence text,
    //    then differential-test the bound spec against paradigm_dp over
    //    every short DNA pair before emitting any code.
    let bindings = GapBindings {
        gap_open: -12, // the paper's GAP_OPEN = θ+β
        gap_ext: -2,   // GAP_EXT = β
    };
    let proof = prove_kernel("alg1", ALG1_SMITH_WATERMAN_AFFINE).expect("provable");
    println!("== conformance obligations ==");
    for o in &proof.obligations {
        println!("  [{}] {}", o.status.word(), o.id);
    }
    assert!(proof.is_discharged());
    let bounds = EnumBounds {
        alphabet_size: 2,
        max_len: 3,
    };
    let diff = verify_spec(&spec, bindings, 2, -3, &bounds).expect("legal bindings");
    let checks: u64 = diff.stats.iter().map(|s| s.checks).sum();
    println!(
        "  differential harness: {} pairs, {checks} checks, {} mismatches",
        diff.pairs, diff.mismatch_count
    );
    assert!(diff.mismatch_count == 0 && diff.violations.is_empty());
    println!();

    // 4. Emit the specialized Rust kernel.
    let rust_src = emit_rust_kernel(&spec, bindings);
    println!(
        "== generated Rust kernel ({} lines) ==",
        rust_src.lines().count()
    );
    for line in rust_src.lines().take(28) {
        println!("{line}");
    }
    println!("  ... (truncated)\n");

    // 5. Bind constants and run through the runtime kernels.
    let cfg = spec_to_config(&spec, bindings, &BLOSUM62).expect("valid bindings");
    let hand = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let mut rng = seeded_rng(123);
    let q = named_query(&mut rng, 120);
    let s = named_query(&mut rng, 140);
    let from_text = Aligner::new(cfg)
        .with_strategy(Strategy::Hybrid)
        .align(&q, &s)
        .unwrap()
        .score;
    let from_hand = Aligner::new(hand)
        .with_strategy(Strategy::Hybrid)
        .align(&q, &s)
        .unwrap()
        .score;
    println!("== verification ==");
    println!("score via analyzed sequential text : {from_text}");
    println!("score via hand-built configuration: {from_hand}");
    assert_eq!(from_text, from_hand);
    println!("identical — the pipeline preserved the kernel's semantics.");
}
