//! Quickstart: align two protein sequences with every strategy and
//! show the reconstructed alignment.
//!
//! Run: `cargo run --release --example quickstart`

use aalign::bio::{matrices::BLOSUM62, Sequence};
use aalign::core::traceback::traceback_align;
use aalign::{AlignConfig, Aligner, GapModel, Strategy};

fn main() {
    // The classic textbook pair (Durbin et al.).
    let query = Sequence::protein("query", b"HEAGAWGHEE").unwrap();
    let subject = Sequence::protein("subject", b"PAWHEAE").unwrap();

    // Local (Smith-Waterman) alignment, affine gaps: opening a gap
    // costs 10, each gapped residue another 2, scores from BLOSUM62.
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    println!("aligning {} vs {}\n", query.id(), subject.id());
    for strategy in [
        Strategy::Sequential,
        Strategy::StripedIterate,
        Strategy::StripedScan,
        Strategy::Hybrid,
    ] {
        let aligner = Aligner::new(cfg.clone()).with_strategy(strategy);
        let out = aligner.align(&query, &subject).unwrap();
        println!(
            "{:<10} score {:>3}   backend {:<14} width i{}",
            strategy.short(),
            out.score,
            out.backend,
            out.elem_bits
        );
    }

    // All strategies agree; reconstruct the path for display.
    println!("\n{}", traceback_align(&cfg, &query, &subject).pretty());

    // Global (Needleman-Wunsch) with linear gaps on the same pair.
    let nw = AlignConfig::global(GapModel::linear(-4), &BLOSUM62);
    let out = Aligner::new(nw.clone()).align(&query, &subject).unwrap();
    println!("global/linear score: {}", out.score);
    println!("{}", traceback_align(&nw, &query, &subject).pretty());
}
