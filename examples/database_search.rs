//! Database search: the paper's Sec. V-E workload — one query
//! against a whole (synthetic, swiss-prot-like) protein database,
//! multithreaded with dynamic work binding, then a traceback on the
//! best hits.
//!
//! Run: `cargo run --release --example database_search`

use aalign::bio::synth::{named_query, seeded_rng, swissprot_like_db, Level, PairSpec};
use aalign::bio::{matrices::BLOSUM62, SeqDatabase};
use aalign::core::traceback::traceback_align;
use aalign::par::{EngineHandle, SearchOptions};
use aalign::{AlignConfig, Aligner, GapModel, Strategy};

fn main() {
    let mut rng = seeded_rng(42);
    let query = named_query(&mut rng, 250);

    // A synthetic database with swiss-prot-like length statistics,
    // with three planted homologs of decreasing similarity.
    let mut seqs = swissprot_like_db(7, 3000).sequences().to_vec();
    for (i, spec) in [
        PairSpec::new(Level::Hi, Level::Hi),
        PairSpec::new(Level::Md, Level::Md),
        PairSpec::new(Level::Lo, Level::Hi),
    ]
    .iter()
    .enumerate()
    {
        let mut planted = spec.generate(&mut rng, &query);
        let _ = i;
        planted.subject = aalign::bio::Sequence::from_indices(
            format!("planted_{}", spec.label()),
            query.alphabet(),
            planted.subject.indices().to_vec(),
        );
        seqs.push(planted.subject);
    }
    let db = SeqDatabase::new(seqs);
    let stats = db.stats();
    println!(
        "database: {} sequences, {:.0} aa mean, {} aa total",
        stats.count, stats.mean_len, stats.total_residues
    );

    let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62))
        .with_strategy(Strategy::Hybrid);

    // A persistent engine handle: the pool spins up once and could
    // serve any number of follow-up queries (the CLI and
    // `aalign-serve` hold one of these too).
    let engine = EngineHandle::new(0 /* all cores */);
    let report = engine
        .search(&aligner, &query, &db, &SearchOptions::new().top_n(5))
        .unwrap();

    println!(
        "searched {} subjects on {} threads in {:.2}s ({:.2} GCUPS)\n",
        report.subjects,
        report.threads_used,
        report.metrics.total.as_secs_f64(),
        report.metrics.gcups
    );

    println!("top {} hits:", report.hits.len());
    for (rank, hit) in report.hits.iter().enumerate() {
        println!(
            "{:>2}. {:<18} len {:>5}  score {:>5}",
            rank + 1,
            db.id(hit.db_index),
            hit.len,
            hit.score
        );
    }

    // Traceback the best hit for display.
    let best = &report.hits[0];
    println!("\nbest alignment:");
    let aln = traceback_align(aligner.config(), &query, db.get(best.db_index));
    println!("{}", aln.pretty());
}
