//! # aalign — facade crate
//!
//! Re-exports the public API of the AAlign workspace. See the README
//! for a tour; the typical entry point is [`Aligner`].
//!
//! ```
//! use aalign::{AlignConfig, Aligner, GapModel, Strategy};
//! use aalign::bio::{matrices::BLOSUM62, Sequence};
//!
//! let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
//! let aligner = Aligner::new(cfg).with_strategy(Strategy::Hybrid);
//! let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
//! let s = Sequence::protein("s", b"PAWHEAE").unwrap();
//! let out = aligner.align(&q, &s).unwrap();
//! assert!(out.score > 0);
//! ```

pub use aalign_core::{
    AlignConfig, AlignError, AlignKind, AlignOutput, AlignScratch, Aligner, GapModel, HybridPolicy,
    Strategy, WidthPolicy,
};

/// Bioinformatics substrate: sequences, FASTA, matrices, profiles,
/// synthetic data generation.
pub mod bio {
    pub use aalign_bio::*;
}

/// Vector-module layer: SIMD engines and the weighted max-scan.
pub mod vec {
    pub use aalign_vec::*;
}

/// Core kernels and configuration (everything `Aligner` is built from).
pub mod core {
    pub use aalign_core::*;
}

/// The code-translation front end (sequential paradigm → kernel spec →
/// generated Rust).
pub mod codegen {
    pub use aalign_codegen::*;
}

/// Comparator implementations (naive scalar, SWPS3-like, SWAPHI-like).
pub mod baselines {
    pub use aalign_baselines::*;
}

/// Multi-threaded database search.
pub mod par {
    pub use aalign_par::*;
}

/// Observability: trace events/sinks, histograms, the JSONL trace
/// format, and decision-timeline reports.
pub mod obs {
    pub use aalign_obs::*;
}

/// Alignment as a service: the dispatcher (batching, admission
/// control, drain) and the HTTP / stdio JSON-RPC front ends.
pub mod serve {
    pub use aalign_serve::*;
}

/// Fault-tolerant multi-process sharding: the shard supervisor,
/// worker-child plumbing, and (with `fault-inject`) deterministic
/// chaos plans.
pub mod shard {
    pub use aalign_shard::*;
}
