//! `aalign` — command-line front end.
//!
//! Subcommands:
//!
//! * `pair`         — align two FASTA sequences (scores + optional traceback)
//! * `search`       — align a query against a FASTA database, multithreaded
//! * `serve`        — run the alignment daemon (HTTP/JSON or stdio JSON-RPC)
//! * `shard-search` — fan a query out over N supervised child processes
//! * `shard-bench`  — shard-supervisor latency envelope for the perf gate
//! * `loadgen`      — drive a running daemon and report latency quantiles
//! * `trace-report` — render the hybrid decision timeline from a trace
//! * `gen-db`       — generate a synthetic swiss-prot-like database
//! * `codegen`      — analyze a sequential paradigm kernel and emit Rust
//! * `info`         — report detected vector ISAs and chosen backends
//!
//! Examples:
//! ```text
//! aalign pair --query q.fa --subject s.fa --open -10 --ext -2 --traceback
//! aalign search --query q.fa --db swissprot.fa --top 10 --threads 8
//! aalign search --query q.fa --db db.fa --stats --trace-out trace.jsonl
//! aalign trace-report --trace trace.jsonl --subjects 5
//! aalign gen-db --count 10000 --seed 7 --out db.fa
//! aalign codegen --input kernel.seq --open -12 --ext -2
//! ```

use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;

use aalign::bio::alphabet::PROTEIN;
use aalign::bio::fasta::{read_fasta, write_fasta};
use aalign::bio::matrices::BLOSUM62;
use aalign::bio::synth::swissprot_like_db;
use aalign::bio::Sequence;
use aalign::codegen::emit::GapBindings;
use aalign::core::traceback::traceback_align;
use aalign::par::{EngineHandle, SearchOptions};
use aalign::vec::IsaSupport;
use aalign::{AlignConfig, Aligner, GapModel, Strategy, WidthPolicy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "pair" => cmd_pair(rest),
        "search" => cmd_search(rest),
        "serve" => cmd_serve(rest),
        "shard-search" => cmd_shard_search(rest),
        "shard-bench" => cmd_shard_bench(rest),
        "loadgen" => cmd_loadgen(rest),
        "trace-report" => cmd_trace_report(rest),
        "gen-db" => cmd_gen_db(rest),
        "codegen" => cmd_codegen(rest),
        "info" => cmd_info(),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  aalign pair    --query <fa> --subject <fa> [--global|--semi-global] [--linear]
                 [--open N] [--ext N] [--strategy seq|iterate|scan|hybrid]
                 [--width auto|8|16|32] [--traceback]
  aalign search  --query <fa> --db <fa> [--top N] [--threads N]
                 [--open N] [--ext N] [--strategy ...] [--inter] [--stats]
                 [--trace-out <jsonl>] [--metrics-format text|json|prom]
                 [--timeout MS] [--no-rescue] [--fault-plan <spec>]
  aalign serve   --db <fa> [--addr HOST:PORT] [--stdio] [--threads N]
                 [--open N] [--ext N] [--strategy ...]
                 [--max-inflight N] [--max-queued N] [--tenant-quota N]
                 [--default-timeout MS] [--drain-timeout MS]
                 [--fault-plan <spec>] [--shards N]
  aalign shard-search --query <fa> --db <fa> --shards N [--top N]
                 [--threads N] [--open N] [--ext N] [--strategy ...]
                 [--timeout MS] [--metrics-format text|json|prom]
                 [--shard-fault kill@SHARD[:N]]
  aalign shard-bench [--count N] [--seed N] [--queries N] [--top N]
                 [--shards-list 1,2,4] [--out <json>]
  aalign loadgen --addr HOST:PORT [--concurrency N] [--duration-ms N]
                 [--seed N] [--top N] [--queries N] [--out <json>]
  aalign trace-report --trace <jsonl> [--subjects N]
  aalign gen-db  --count N [--seed N] [--mean-len N] --out <fa>
  aalign codegen --input <file> [--open N] [--ext N] [--out <rs>]
  aalign info";

/// Tiny flag parser: `--name value` and boolean `--name`.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn get_i32(&self, name: &str, default: i32) -> Result<i32, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{name} expects an integer")),
        }
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{name} expects an integer")),
        }
    }
}

fn load_first_seq(path: &str) -> Result<Sequence, String> {
    let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let seqs = read_fasta(BufReader::new(f), &PROTEIN).map_err(|e| format!("{path}: {e}"))?;
    seqs.into_iter()
        .next()
        .ok_or_else(|| format!("{path}: no sequences"))
}

fn build_aligner(flags: &Flags<'_>) -> Result<Aligner, String> {
    let open = flags.get_i32("--open", -10)?;
    let ext = flags.get_i32("--ext", -2)?;
    let gap = if flags.has("--linear") {
        GapModel::linear(ext)
    } else {
        GapModel::affine(open, ext)
    };
    let cfg = if flags.has("--global") {
        AlignConfig::global(gap, &BLOSUM62)
    } else if flags.has("--semi-global") {
        AlignConfig::semi_global(gap, &BLOSUM62)
    } else {
        AlignConfig::local(gap, &BLOSUM62)
    };
    let strategy = match flags.get("--strategy").unwrap_or("hybrid") {
        "seq" => Strategy::Sequential,
        "iterate" => Strategy::StripedIterate,
        "scan" => Strategy::StripedScan,
        "hybrid" => Strategy::Hybrid,
        other => return Err(format!("unknown strategy {other:?}")),
    };
    let width = match flags.get("--width").unwrap_or("auto") {
        "auto" => WidthPolicy::Auto,
        "8" => WidthPolicy::Fixed8,
        "16" => WidthPolicy::Fixed16,
        "32" => WidthPolicy::Fixed32,
        other => return Err(format!("unknown width {other:?}")),
    };
    Ok(Aligner::new(cfg).with_strategy(strategy).with_width(width))
}

fn cmd_pair(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let query = load_first_seq(flags.get("--query").ok_or("--query required")?)?;
    let subject = load_first_seq(flags.get("--subject").ok_or("--subject required")?)?;
    let aligner = build_aligner(&flags)?;
    let out = aligner.align(&query, &subject).map_err(|e| e.to_string())?;
    println!(
        "score {}  ({} on {}, i{}, {} scan / {} iterate columns)",
        out.score,
        out.strategy.short(),
        out.backend,
        out.elem_bits,
        out.stats.scan_columns,
        out.stats.iterate_columns
    );
    if flags.has("--traceback") {
        println!(
            "{}",
            traceback_align(aligner.config(), &query, &subject).pretty()
        );
    }
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let query = load_first_seq(flags.get("--query").ok_or("--query required")?)?;
    let db_path = flags.get("--db").ok_or("--db required")?;
    let f = File::open(db_path).map_err(|e| format!("{db_path}: {e}"))?;
    let db = aalign::bio::SeqDatabase::from_fasta(BufReader::new(f), &PROTEIN)
        .map_err(|e| format!("{db_path}: {e}"))?;
    let aligner = build_aligner(&flags)?;
    let trace_out = flags.get("--trace-out");
    if trace_out.is_some() && flags.has("--inter") {
        return Err(
            "--trace-out needs the intra-sequence sweep (the inter kernel has no \
             per-column trace); drop --inter or --trace-out"
                .to_string(),
        );
    }
    let mut opts = SearchOptions::new()
        .top_n(flags.get_usize("--top", 10)?)
        .trace(trace_out.is_some())
        .rescue(!flags.has("--no-rescue"));
    if let Some(ms) = flags.get("--timeout") {
        let ms: u64 = ms.parse().map_err(|_| "--timeout expects milliseconds")?;
        opts = opts.deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(spec) = flags.get("--fault-plan") {
        #[cfg(feature = "fault-inject")]
        {
            let plan =
                aalign::par::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
            opts = opts.fault_plan(std::sync::Arc::new(plan));
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = spec;
            return Err(
                "--fault-plan needs a build with the `fault-inject` feature \
                 (cargo build --features fault-inject)"
                    .to_string(),
            );
        }
    }
    // The CLI shares the server's construction path: an
    // `EngineHandle` sized for this one sweep.
    let threads = flags.get_usize("--threads", 0)?;
    let report = if flags.has("--inter") {
        EngineHandle::transient_inter(threads, db.len()).search_inter(
            aligner.config(),
            &query,
            &db,
            &opts,
        )
    } else {
        EngineHandle::transient(threads, db.len()).search(&aligner, &query, &db, &opts)
    }
    .map_err(|e| e.to_string())?;
    if let Some(path) = trace_out {
        let f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut writer = aalign::obs::TraceWriter::new(std::io::BufWriter::new(f));
        writer
            .write_all(&report.trace_events)
            .map_err(|e| format!("{path}: {e}"))?;
        let events = writer.written();
        writer.finish().map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {events} trace events to {path}");
    }
    println!(
        "searched {} subjects ({} residues) on {} threads in {:.2}s ({:.2} GCUPS)",
        report.subjects,
        report.total_residues,
        report.threads_used,
        report.metrics.total.as_secs_f64(),
        report.metrics.gcups
    );
    if report.metrics.rescued > 0 {
        println!(
            "rescued {} lane-saturated subject(s) at a wider width",
            report.metrics.rescued
        );
    }
    warn_partial(&report);
    match flags.get("--metrics-format") {
        None => {
            if flags.has("--stats") {
                print!("{}", report.metrics.summary());
            }
        }
        Some("text") => print!("{}", report.metrics.summary()),
        Some("json") => println!("{}", report.metrics.to_json()),
        Some("prom") => print!("{}", report.metrics.to_prometheus()),
        Some(other) => {
            return Err(format!(
                "unknown metrics format {other:?} (expected text, json, or prom)"
            ))
        }
    }
    // Bit scores / E-values with the standard BLOSUM62 gapped pair
    // (report raw scores for other configurations).
    let stats_params = aalign::bio::stats::BLOSUM62_GAPPED_11_1;
    for (rank, hit) in report.hits.iter().enumerate() {
        let bits = aalign::bio::stats::bit_score(hit.score, stats_params);
        let ev = aalign::bio::stats::evalue(bits, query.len(), report.total_residues);
        println!(
            "{:>3}. {:<24} len {:>6}  score {:>6}  bits {:>7.1}  E {:.2e}",
            rank + 1,
            db.id(hit.db_index),
            hit.len,
            hit.score,
            bits,
            ev
        );
    }
    Ok(())
}

/// Shared partial-result reporting: a human-readable warning plus
/// the same versioned wire object a `serve` front end returns for a
/// deadline-expired or fault-interrupted request, so scripts can
/// parse one shape regardless of where the search ran.
fn warn_partial(report: &aalign::par::SearchReport) {
    if !report.partial {
        return;
    }
    eprintln!(
        "warning: partial results — {} error(s) during the sweep:",
        report.errors.len()
    );
    for e in &report.errors {
        eprintln!("  - {e}");
    }
    eprintln!("{}", aalign::par::wire::report_to_wire(report).render());
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let db_path = flags.get("--db").ok_or("--db required")?;
    let f = File::open(db_path).map_err(|e| format!("{db_path}: {e}"))?;
    let db = aalign::bio::SeqDatabase::from_fasta(BufReader::new(f), &PROTEIN)
        .map_err(|e| format!("{db_path}: {e}"))?;
    let aligner = build_aligner(&flags)?;

    let mut cfg = aalign::serve::DispatcherConfig::default()
        .max_inflight(flags.get_usize("--max-inflight", 4)?)
        .max_queued(flags.get_usize("--max-queued", 16)?)
        .tenant_quota(flags.get_usize("--tenant-quota", 0)?);
    if let Some(ms) = flags.get("--default-timeout") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "--default-timeout expects milliseconds")?;
        cfg = cfg.default_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(spec) = flags.get("--fault-plan") {
        #[cfg(feature = "fault-inject")]
        {
            let plan =
                aalign::par::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
            cfg = cfg.fault_plan(std::sync::Arc::new(plan));
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = spec;
            return Err(
                "--fault-plan needs a build with the `fault-inject` feature \
                 (cargo build --features fault-inject)"
                    .to_string(),
            );
        }
    }

    let drain_ms: u64 = match flags.get("--drain-timeout") {
        None => 30_000,
        Some(v) => v
            .parse()
            .map_err(|_| "--drain-timeout expects milliseconds")?,
    };
    let opts = aalign::serve::DaemonOptions::default()
        .front_end(if flags.has("--stdio") {
            aalign::serve::FrontEnd::Stdio
        } else {
            aalign::serve::FrontEnd::Http
        })
        .addr(flags.get("--addr").unwrap_or("127.0.0.1:7691"))
        .drain_timeout(std::time::Duration::from_millis(drain_ms));

    let threads = flags.get_usize("--threads", 0)?;
    // `--shards N` turns this daemon into a shard supervisor: the
    // same front ends, but every search fans out to N child
    // processes (spawned from this same binary) instead of the local
    // engine pool.
    let shards = flags.get_usize("--shards", 0)?;
    let supervisor = if shards > 0 {
        Some(launch_supervisor(&flags, &db, shards, None)?)
    } else {
        None
    };
    let mut dispatcher = aalign::serve::Dispatcher::new(aligner, db, threads, cfg);
    if let Some(sup) = supervisor {
        dispatcher = dispatcher.with_shards(sup);
    }
    let dispatcher = std::sync::Arc::new(dispatcher);
    match aalign::serve::run_daemon(dispatcher, &opts).map_err(|e| e.to_string())? {
        0 => Ok(()),
        _ => Err("drain timeout expired with requests still in flight".to_string()),
    }
}

/// Flags a shard child must inherit so every child scores exactly
/// like the reference single-process engine: the aligner
/// configuration and the per-child thread budget.
fn child_serve_args(flags: &Flags<'_>) -> Vec<String> {
    let mut extra = Vec::new();
    for flag in ["--open", "--ext", "--strategy", "--width", "--threads"] {
        if let Some(v) = flags.get(flag) {
            extra.push(flag.to_string());
            extra.push(v.to_string());
        }
    }
    for flag in ["--linear", "--global", "--semi-global", "--no-rescue"] {
        if flags.has(flag) {
            extra.push(flag.to_string());
        }
    }
    extra
}

/// Build and launch a [`Supervisor`](aalign::shard::Supervisor) over
/// `db` with `shards` children spawned from this same executable.
fn launch_supervisor(
    flags: &Flags<'_>,
    db: &aalign::bio::SeqDatabase,
    shards: usize,
    deadline: Option<std::time::Duration>,
) -> Result<std::sync::Arc<aalign::shard::Supervisor>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let cmd = aalign::shard::WorkerCommand::serve_stdio(exe, &child_serve_args(flags));
    let mut sopts = aalign::shard::ShardOptions::new(shards);
    if let Some(d) = deadline {
        sopts = sopts.default_deadline(d);
    }
    if let Some(spec) = flags.get("--shard-fault") {
        #[cfg(feature = "fault-inject")]
        {
            let plan: aalign::shard::ShardFaultPlan =
                spec.parse().map_err(|e| format!("--shard-fault: {e}"))?;
            sopts = sopts.fault(plan);
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = spec;
            return Err(
                "--shard-fault needs a build with the `fault-inject` feature \
                 (cargo build --features fault-inject)"
                    .to_string(),
            );
        }
    }
    aalign::shard::Supervisor::launch(db, cmd, sopts).map_err(|e| e.to_string())
}

/// Fan one query out over a fresh shard supervisor and print the
/// merged report in the same shape `search` prints a single-process
/// one — same hit lines, same metrics formats — plus the shard
/// outcome accounting.
fn cmd_shard_search(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let query = load_first_seq(flags.get("--query").ok_or("--query required")?)?;
    let db_path = flags.get("--db").ok_or("--db required")?;
    let f = File::open(db_path).map_err(|e| format!("{db_path}: {e}"))?;
    let db = aalign::bio::SeqDatabase::from_fasta(BufReader::new(f), &PROTEIN)
        .map_err(|e| format!("{db_path}: {e}"))?;
    let shards = flags.get_usize("--shards", 2)?;
    let deadline = match flags.get("--timeout") {
        None => None,
        Some(ms) => Some(std::time::Duration::from_millis(
            ms.parse().map_err(|_| "--timeout expects milliseconds")?,
        )),
    };
    let sup = launch_supervisor(&flags, &db, shards, deadline)?;

    let text = String::from_utf8(query.text()).map_err(|e| format!("query: {e}"))?;
    let q = aalign::shard::ShardQuery::new(text)
        .query_id(query.id())
        .top_n(flags.get_usize("--top", 10)?);
    let report = sup.search(&q).map_err(|e| e.to_string())?;

    println!(
        "searched {} subjects ({} residues) across {} shards in {:.2}s ({:.2} GCUPS)",
        report.subjects,
        report.total_residues,
        sup.shards(),
        report.metrics.total.as_secs_f64(),
        report.metrics.gcups
    );
    let so = report.metrics.shards;
    println!(
        "shards: {} ok, {} failed ({} timed out), {} retried; {} respawn(s) total",
        so.ok,
        so.failed,
        so.timed_out,
        so.retried,
        sup.respawns()
    );
    warn_partial(&report);
    match flags.get("--metrics-format") {
        None => {
            if flags.has("--stats") {
                print!("{}", report.metrics.summary());
            }
        }
        Some("text") => print!("{}", report.metrics.summary()),
        Some("json") => println!("{}", report.metrics.to_json()),
        Some("prom") => print!("{}", report.metrics.to_prometheus()),
        Some(other) => {
            return Err(format!(
                "unknown metrics format {other:?} (expected text, json, or prom)"
            ))
        }
    }
    let stats_params = aalign::bio::stats::BLOSUM62_GAPPED_11_1;
    for (rank, hit) in report.hits.iter().enumerate() {
        let bits = aalign::bio::stats::bit_score(hit.score, stats_params);
        let ev = aalign::bio::stats::evalue(bits, query.len(), report.total_residues);
        println!(
            "{:>3}. {:<24} len {:>6}  score {:>6}  bits {:>7.1}  E {:.2e}",
            rank + 1,
            db.id(hit.db_index),
            hit.len,
            hit.score,
            bits,
            ev
        );
    }
    if !sup.shutdown() {
        eprintln!("warning: dirty drain — a shard child outlived the grace period");
    }
    Ok(())
}

/// Latency envelope for the shard supervisor: run a deterministic
/// query mix at each shard count and emit the same versioned bench
/// document shape `loadgen` emits, for CI's perf gate
/// (`results/BENCH_shard.json`).
fn cmd_shard_bench(args: &[String]) -> Result<(), String> {
    use aalign::obs::wire::{obj, versioned, JsonValue};
    use aalign::obs::Histogram;
    use std::time::Instant;

    let flags = Flags { args };
    let count = flags.get_usize("--count", 300)?;
    let seed = flags.get_usize("--seed", 42)? as u64;
    let n_queries = flags.get_usize("--queries", 6)?.max(1);
    let top_n = flags.get_usize("--top", 5)?;
    let shard_list: Vec<usize> = flags
        .get("--shards-list")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("--shards-list: {s:?} is not a number"))
        })
        .collect::<Result<_, _>>()?;

    let db = swissprot_like_db(seed, count);
    let mut rng = aalign::bio::synth::seeded_rng(seed ^ 0x5eed);
    let queries: Vec<String> = (0..n_queries)
        .map(|i| {
            let len = 40 + (i % 4) * 15;
            String::from_utf8(aalign::bio::synth::named_query(&mut rng, len).text()).unwrap()
        })
        .collect();
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;

    let mut rows = Vec::new();
    for &n in &shard_list {
        // One engine thread per child keeps the envelope stable on
        // small CI runners; the sharding itself is what's measured.
        let cmd = aalign::shard::WorkerCommand::serve_stdio(
            &exe,
            &["--threads".to_string(), "1".to_string()],
        );
        let sup = aalign::shard::Supervisor::launch(&db, cmd, aalign::shard::ShardOptions::new(n))
            .map_err(|e| format!("shards={n}: {e}"))?;
        // Warm-up: first query pays child startup caches.
        let _ = sup.search(&aalign::shard::ShardQuery::new(queries[0].clone()).top_n(top_n));
        let mut hist = Histogram::new();
        let mut partial = 0u64;
        let started = Instant::now();
        for q in &queries {
            let t0 = Instant::now();
            let report = sup
                .search(&aalign::shard::ShardQuery::new(q.clone()).top_n(top_n))
                .map_err(|e| format!("shards={n}: {e}"))?;
            hist.record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
            partial += u64::from(report.partial);
        }
        let elapsed = started.elapsed().as_secs_f64();
        let rps = queries.len() as f64 / elapsed.max(1e-9);
        if partial > 0 {
            return Err(format!(
                "shards={n}: {partial} of {} bench queries came back partial",
                queries.len()
            ));
        }
        let source = format!("shards_{n}");
        rows.push(obj(vec![
            ("source", source.as_str().into()),
            ("count", hist.count().into()),
            ("p50_us", hist.p50().into()),
            ("p99_us", hist.p99().into()),
            ("p999_us", hist.p999().into()),
            ("max_us", hist.max_value().into()),
            ("throughput_rps", rps.into()),
        ]));
        eprintln!(
            "shards={n}: {} queries, p50 {}µs p99 {}µs, {:.1} req/s",
            hist.count(),
            hist.p50(),
            hist.p99(),
            rps
        );
        if !sup.shutdown() {
            eprintln!("warning: shards={n}: dirty drain");
        }
    }

    let doc = versioned(vec![
        ("bench", "shard_search".into()),
        (
            "env",
            obj(vec![
                ("db_count", count.into()),
                ("seed", seed.into()),
                ("queries", n_queries.into()),
                ("top_n", top_n.into()),
            ]),
        ),
        ("rows", JsonValue::Array(rows)),
    ]);
    let rendered = doc.render();
    match flags.get("--out") {
        Some(path) => {
            std::fs::write(path, rendered + "\n").map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

/// Drive a running daemon with a deterministic seeded query mix and
/// emit a `serve_latency` bench envelope: client-side end-to-end
/// quantiles plus the server's lossless stage histograms scraped
/// from `/v1/health`. The output is what CI's perf gate diffs
/// against `results/BENCH_serve_latency.json`.
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use aalign::obs::wire::{histogram_from_wire, obj, versioned, JsonValue};
    use aalign::obs::Histogram;
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let flags = Flags { args };
    let addr = flags.get("--addr").ok_or("--addr required")?.to_string();
    let concurrency = flags.get_usize("--concurrency", 4)?.max(1);
    let duration_ms = flags.get_usize("--duration-ms", 2000)? as u64;
    let seed = flags.get_usize("--seed", 42)? as u64;
    let top_n = flags.get_usize("--top", 5)?;
    let n_queries = flags.get_usize("--queries", 6)?.max(1);

    // A deliberately small deterministic pool: concurrent workers
    // collide on identical queries, so the run exercises the
    // dispatcher's coalescing path as well as fresh sweeps.
    let mut rng = aalign::bio::synth::seeded_rng(seed);
    let pool: Vec<String> = (0..n_queries)
        .map(|i| {
            let len = 40 + (i % 4) * 15;
            String::from_utf8(aalign::bio::synth::named_query(&mut rng, len).text()).unwrap()
        })
        .collect();

    /// One request over its own connection (`Connection: close` is
    /// the daemon's policy); returns (status, body).
    fn http(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        use std::io::{Read as _, Write as _};
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .map_err(|e| e.to_string())?;
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .map_err(|e| e.to_string())?;
        let status: u16 = response
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.split_whitespace().next())
            .and_then(|c| c.parse().ok())
            .ok_or("response missing an HTTP/1.1 status line")?;
        let payload = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        Ok((status, payload))
    }

    #[derive(Default)]
    struct WorkerStats {
        hist: Histogram, // client-observed end-to-end, microseconds
        sent: u64,
        ok: u64,
        partial: u64,
        batched: u64,
        overloaded: u64,
        errors: u64,
    }

    let started = Instant::now();
    let deadline = started + Duration::from_millis(duration_ms);
    let mut handles = Vec::new();
    for w in 0..concurrency {
        let addr = addr.clone();
        let pool = pool.clone();
        handles.push(std::thread::spawn(move || {
            let mut s = WorkerStats::default();
            let mut i = w;
            while Instant::now() < deadline {
                let q = &pool[i % pool.len()];
                i += 1;
                let body = format!("{{\"query\":\"{q}\",\"top_n\":{top_n}}}");
                let t0 = Instant::now();
                let outcome = http(&addr, "POST", "/v1/search", &body);
                let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                s.sent += 1;
                match outcome {
                    Ok((200, body)) => match JsonValue::parse(&body) {
                        Ok(doc) => {
                            s.hist.record(us);
                            if doc.get("partial").and_then(JsonValue::as_bool) == Some(true) {
                                s.partial += 1;
                            } else {
                                s.ok += 1;
                            }
                            if doc.get("batched").and_then(JsonValue::as_bool) == Some(true) {
                                s.batched += 1;
                            }
                        }
                        Err(_) => s.errors += 1,
                    },
                    Ok((429, _)) => s.overloaded += 1,
                    Ok((_, _)) | Err(_) => s.errors += 1,
                }
            }
            s
        }));
    }
    let mut total = WorkerStats::default();
    for h in handles {
        let s = h.join().map_err(|_| "loadgen worker panicked")?;
        total.hist.merge(&s.hist);
        total.sent += s.sent;
        total.ok += s.ok;
        total.partial += s.partial;
        total.batched += s.batched;
        total.overloaded += s.overloaded;
        total.errors += s.errors;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let completed = total.ok + total.partial;
    if completed == 0 {
        return Err(format!(
            "no requests completed against {addr} ({} sent, {} overloaded, {} errors)",
            total.sent, total.overloaded, total.errors
        ));
    }
    let throughput = completed as f64 / elapsed;

    // The server's own per-stage aggregates, losslessly decoded from
    // the health document's histogram wire shape.
    let (status, health_body) = http(&addr, "GET", "/v1/health", "")?;
    if status != 200 {
        return Err(format!("GET /v1/health returned {status}"));
    }
    let health = JsonValue::parse(&health_body).map_err(|e| format!("health: {e}"))?;
    let stages = health
        .get("stages")
        .ok_or("health document has no \"stages\" — daemon too old for loadgen?")?;
    let server_hist = |key: &str| -> Result<Histogram, String> {
        histogram_from_wire(
            stages
                .get(key)
                .ok_or_else(|| format!("health stages missing {key:?}"))?,
        )
        .map_err(|e| format!("stage {key}: {e}"))
    };

    // One row per latency source. `scale` converts the histogram's
    // native unit to microseconds (client records µs, server ns).
    let row = |source: &str, h: &Histogram, scale: u64, rps: Option<f64>| -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("source", source.into()),
            ("count", h.count().into()),
            ("p50_us", (h.p50() / scale).into()),
            ("p99_us", (h.p99() / scale).into()),
            ("p999_us", (h.p999() / scale).into()),
            ("max_us", (h.max_value() / scale).into()),
        ];
        if let Some(rps) = rps {
            fields.push(("throughput_rps", rps.into()));
        }
        obj(fields)
    };
    let rows = JsonValue::Array(vec![
        row("client_e2e", &total.hist, 1, Some(throughput)),
        row(
            "server_queue_wait",
            &server_hist("queue_wait_ns")?,
            1000,
            None,
        ),
        row(
            "server_batch_wait",
            &server_hist("batch_wait_ns")?,
            1000,
            None,
        ),
        row("server_sweep", &server_hist("sweep_ns")?, 1000, None),
        row("server_e2e", &server_hist("e2e_ns")?, 1000, None),
    ]);

    let doc = versioned(vec![
        ("bench", "serve_latency".into()),
        (
            "env",
            obj(vec![
                ("concurrency", concurrency.into()),
                ("duration_ms", duration_ms.into()),
                ("seed", seed.into()),
                ("top_n", top_n.into()),
                ("query_pool", pool.len().into()),
                (
                    "server_threads",
                    health.get("threads").cloned().unwrap_or(JsonValue::Null),
                ),
                (
                    "server_subjects",
                    health.get("subjects").cloned().unwrap_or(JsonValue::Null),
                ),
            ]),
        ),
        (
            "counters",
            obj(vec![
                ("sent", total.sent.into()),
                ("ok", total.ok.into()),
                ("partial", total.partial.into()),
                ("batched", total.batched.into()),
                ("overloaded", total.overloaded.into()),
                ("errors", total.errors.into()),
            ]),
        ),
        ("rows", rows),
    ]);
    let rendered = doc.render();
    eprintln!(
        "loadgen: {} sent, {} ok, {} partial, {} batched, {} overloaded, {} errors \
         in {elapsed:.2}s ({throughput:.1} req/s; client p50 {}µs p99 {}µs)",
        total.sent,
        total.ok,
        total.partial,
        total.batched,
        total.overloaded,
        total.errors,
        total.hist.p50(),
        total.hist.p99(),
    );
    match flags.get("--out") {
        Some(path) => {
            std::fs::write(path, rendered + "\n").map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

/// Parse a JSONL trace (as written by `search --trace-out`) and
/// render the hybrid decision timeline: per-subject strategy
/// segments, switch/probe counts, and reconciliation against the
/// counters each `AlignEnd` reported.
fn cmd_trace_report(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let path = flags.get("--trace").ok_or("--trace required")?;
    let subjects = flags.get_usize("--subjects", 10)?;
    let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let events = aalign::obs::read_events(BufReader::new(f))
        .map_err(|(line, e)| format!("{path}:{line}: {e}"))?;
    let report = aalign::obs::TraceReport::from_events(&events)
        .map_err(|e| format!("{path}: malformed trace: {e}"))?;
    print!("{}", report.render(subjects));
    let bad = report.unreconciled();
    if !bad.is_empty() {
        return Err(format!(
            "{} subject(s) do not reconcile with their reported kernel counters: {bad:?}",
            bad.len()
        ));
    }
    Ok(())
}

fn cmd_gen_db(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let count = flags.get_usize("--count", 1000)?;
    let seed = flags.get_usize("--seed", 42)? as u64;
    let out_path = flags.get("--out").ok_or("--out required")?;
    let db = swissprot_like_db(seed, count);
    let f = File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    write_fasta(std::io::BufWriter::new(f), db.sequences(), 60).map_err(|e| e.to_string())?;
    let stats = db.stats();
    println!(
        "wrote {} sequences ({} residues, mean {:.0}) to {}",
        stats.count, stats.total_residues, stats.mean_len, out_path
    );
    Ok(())
}

fn cmd_codegen(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let input = flags.get("--input").ok_or("--input required")?;
    let src = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let ast = aalign::codegen::parse_program(&src).map_err(|e| e.to_string())?;
    let spec = aalign::codegen::analyze(&ast).map_err(|e| e.to_string())?;
    eprintln!(
        "analyzed: {} (matrix {}, open {:?}, ext {})",
        spec.label(),
        spec.matrix_name,
        spec.gap_open_name,
        spec.gap_ext_name
    );
    let bindings = GapBindings {
        gap_open: flags.get_i32("--open", -12)?,
        gap_ext: flags.get_i32("--ext", -2)?,
    };
    let rust = aalign::codegen::emit_rust_kernel(&spec, bindings);
    match flags.get("--out") {
        Some(path) => {
            let mut f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
            f.write_all(rust.as_bytes()).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => print!("{rust}"),
    }
    Ok(())
}

fn cmd_info() -> Result<(), String> {
    let sup = IsaSupport::detect();
    println!("vector ISA support:");
    println!("  sse4.1   : {}", sup.sse41);
    println!("  avx2     : {}", sup.avx2);
    println!("  avx512f  : {}", sup.avx512f);
    println!("  avx512bw : {}", sup.avx512bw);
    println!();
    for bits in [8u32, 16, 32] {
        println!(
            "  best backend for i{bits}: {}",
            aalign::vec::best_backend(bits)
        );
    }
    println!("\nplatform mapping (paper): CPU = avx2 (256-bit), MIC = avx512/i32x16 (512-bit)");
    Ok(())
}
