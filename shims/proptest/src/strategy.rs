//! Value-generation strategies.

use core::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice over same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> core::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish_non_exhaustive()
    }
}

impl<T> Union<T> {
    /// Union over the given arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }

    /// Box one arm (helper for the `prop_oneof!` macro).
    pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> BoxedStrategy<T> {
        Box::new(s)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::RngExt;
        let k = rng.random_range(0..self.arms.len());
        self.arms[k].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// String-pattern strategy: a `&str` used as a strategy is treated as
/// a (tiny) regex. Real proptest compiles full regexes; this shim
/// supports the subset the workspace uses — literal characters, `.`
/// (any printable-ish char, occasionally a control or non-ASCII one),
/// character classes `[A-Za-z0-9_.-]`, and the postfix repeats `*`
/// (0..32) and `{m,n}`. Unsupported constructs panic at generation
/// time so a silently-wrong generator can't masquerade as coverage.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        use rand::RngExt;
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut k = 0usize;
        let any_char = |rng: &mut TestRng| -> char {
            // Mostly printable ASCII, sometimes the fun stuff.
            match rng.random_range(0u8..10) {
                0 => char::from_u32(rng.random_range(1u32..0xD800)).unwrap_or('\u{FFFD}'),
                1 => ['\n', '\t', '\r', '\0', 'µ', '€', '語'][rng.random_range(0usize..7)],
                _ => rng.random_range(0x20u8..0x7F) as char,
            }
        };
        while k < chars.len() {
            // One atom: `.`, `[class]`, or a literal character.
            let atom: Atom = match chars[k] {
                '.' => {
                    k += 1;
                    Atom::Any
                }
                '[' => {
                    let close = chars[k..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"));
                    let inner: Vec<char> = chars[k + 1..k + close].to_vec();
                    k += close + 1;
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < inner.len() {
                        if j + 2 < inner.len() && inner[j + 1] == '-' {
                            for c in inner[j]..=inner[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(inner[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty class in pattern {self:?}");
                    Atom::Class(set)
                }
                c => {
                    assert!(
                        !matches!(c, ']' | '(' | ')' | '{' | '}' | '+' | '?' | '|' | '\\'),
                        "proptest shim: unsupported regex construct {c:?} in {self:?}"
                    );
                    k += 1;
                    Atom::Lit(c)
                }
            };
            // Optional postfix repeat: `*` or `{m,n}`.
            let reps = match chars.get(k) {
                Some('*') => {
                    k += 1;
                    rng.random_range(0usize..32)
                }
                Some('{') => {
                    let close = chars[k..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"));
                    let body: String = chars[k + 1..k + close].iter().collect();
                    k += close + 1;
                    let (lo, hi) = match body.split_once(',') {
                        Some((a, b)) => (
                            a.parse::<usize>().expect("repeat bound"),
                            b.parse::<usize>().expect("repeat bound"),
                        ),
                        None => {
                            let n = body.parse::<usize>().expect("repeat bound");
                            (n, n)
                        }
                    };
                    rng.random_range(lo..=hi)
                }
                _ => 1,
            };
            for _ in 0..reps {
                match &atom {
                    Atom::Any => out.push(any_char(rng)),
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.random_range(0..set.len())]),
                }
            }
        }
        out
    }
}

enum Atom {
    Any,
    Lit(char),
    Class(Vec<char>),
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
