//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! provides the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, range / `any` / [`strategy::Just`] /
//! tuple / [`collection::vec`] strategies, `prop_map`,
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case reports the seed, case index
//!   and the formatted failure, but is not minimized;
//! * **fixed deterministic seeding** — each test function derives its
//!   seed from its own name, so runs are reproducible without a
//!   persistence file (`.proptest-regressions` files are ignored);
//! * strategies are plain value generators (`Strategy::generate`).

use rand::SeedableRng;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// The RNG handed to strategies.
pub type TestRng = rand::StdRng;

/// Test-case failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure reason.
    pub message: String,
}

impl TestCaseError {
    /// Failure with the given reason.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Permitted lengths for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::RngExt;
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` and the `Arbitrary` trait behind it.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::Rng;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::Rng;
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }

    /// See [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Stable per-test seed: FNV-1a over the test's name, so every test
/// function explores a different but reproducible sequence.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Run `body` for `config.cases` random cases, panicking with context
/// on the first failure. The backbone of the [`proptest!`] macro.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = rng_for(test_name);
    for case in 0..config.cases {
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest case {case}/{} failed in {test_name}: {}",
                config.cases, e.message
            );
        }
    }
}

/// Define property tests. Supports the real-proptest form used in this
/// workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0i32..10, v in proptest::collection::vec(any::<i8>(), 3)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &config, |__proptest_rng| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::arm($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            x in -5i32..5,
            v in crate::collection::vec(0u8..10, 2..6),
            t in (0i32..=3, Just(7u8)),
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert_eq!(t.1, 7u8);
        }

        #[test]
        fn oneof_and_map(
            k in prop_oneof![Just(1i32), Just(2i32), (10i32..20).prop_map(|v| v * 2)],
        ) {
            prop_assert!(k == 1 || k == 2 || (20..40).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_context() {
        crate::run_cases(
            "failures_panic_with_context",
            &ProptestConfig::with_cases(4),
            |_| Err(TestCaseError::fail("boom")),
        );
    }
}
