//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API shape the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`criterion_group!`], [`criterion_main!`] — over a simple
//! mean-of-samples timer. No statistical analysis, plots, or saved
//! baselines; results print one line per benchmark:
//!
//! ```text
//! bench fig9/sw-aff/cpu/iterate/q500 ... 1.234 ms/iter (20 samples)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accept (and ignore) CLI arguments, like real criterion's
    /// `configure_from_args`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Run one stand-alone benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &id.full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }
}

/// A named group sharing timing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.full);
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.full);
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Close the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Label from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { full: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { full: s }
    }
}

/// Hands the closure under measurement to the timer.
#[derive(Debug)]
pub struct Bencher {
    mode: BencherMode,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    secs_per_iter: f64,
    iters_done: u64,
}

#[derive(Debug)]
enum BencherMode {
    /// Run once to estimate cost (warm-up / calibration).
    Calibrate,
    /// Run `n` iterations and record the elapsed time.
    Measure(u64),
}

impl Bencher {
    /// Time `f`, keeping its output alive so the call is not optimized
    /// away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = match self.mode {
            BencherMode::Calibrate => 1,
            BencherMode::Measure(n) => n,
        };
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.secs_per_iter = elapsed.as_secs_f64() / n as f64;
        self.iters_done = n;
    }
}

/// Opaque value barrier (stable `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration pass: how expensive is one iteration?
    let mut b = Bencher {
        mode: BencherMode::Calibrate,
        secs_per_iter: 0.0,
        iters_done: 0,
    };
    f(&mut b);
    let per_iter = b.secs_per_iter.max(1e-9);

    // Warm-up within its budget.
    let warm_iters = (warm_up_time.as_secs_f64() / per_iter).clamp(1.0, 1e6) as u64;
    b.mode = BencherMode::Measure(warm_iters);
    f(&mut b);

    // Sampled measurement: split the budget across samples.
    let budget_per_sample = measurement_time.as_secs_f64() / sample_size as f64;
    let iters = (budget_per_sample / per_iter).clamp(1.0, 1e7) as u64;
    let mut total = 0.0;
    for _ in 0..sample_size {
        b.mode = BencherMode::Measure(iters);
        f(&mut b);
        total += b.secs_per_iter;
    }
    let mean = total / sample_size as f64;
    let (value, unit) = if mean >= 1.0 {
        (mean, "s")
    } else if mean >= 1e-3 {
        (mean * 1e3, "ms")
    } else if mean >= 1e-6 {
        (mean * 1e6, "µs")
    } else {
        (mean * 1e9, "ns")
    };
    println!("bench {label} ... {value:.3} {unit}/iter ({sample_size} samples)");
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_reports_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut calls = 0u64;
        let calls_ref = &mut calls;
        c.bench_function("smoke", move |b| {
            b.iter(|| {
                *calls_ref += 1;
            });
        });
    }

    #[test]
    fn group_chaining_compiles() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(1)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("case", 42), &42usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
