//! Offline stand-in for the `loom` model checker.
//!
//! The build environment vendors every external dependency, so this
//! crate re-implements the slice of loom's API the workspace uses:
//! [`model`], [`thread::spawn`]/[`thread::JoinHandle`],
//! [`sync::Mutex`], [`sync::Arc`], and the `sync::atomic` types.
//!
//! # How checking works
//!
//! [`model`] runs the closure repeatedly, each time under a
//! **serializing scheduler**: every spawned thread is a real OS
//! thread, but exactly one is ever runnable, and control transfers
//! only at *scheduling points* — atomic operations, mutex locks,
//! spawn, join, and [`thread::yield_now`]. At each point where more
//! than one thread could run next, the scheduler consults an
//! exploration path; after each execution the path advances
//! depth-first, so **every interleaving of scheduling points is
//! eventually executed** (for terminating, deterministic models).
//! A failed assertion, panic, or deadlock aborts the run and is
//! re-thrown with the offending schedule attached. A model whose
//! scheduling points vary across executions (non-deterministic) is
//! reported as a failure as soon as replay diverges, never silently
//! explored along a wrong schedule.
//!
//! # Honest differences from real loom
//!
//! * Interleavings are explored under **sequential consistency**:
//!   memory `Ordering` arguments are accepted but not modeled, so a
//!   bug that *only* manifests as a missing release/acquire edge on
//!   real hardware is not caught here. The workspace compensates
//!   statically: `aalign-analyzer concurrency` forces every atomic
//!   site to carry an `// ORDER:` proof and rejects `Relaxed` at
//!   sites whose proof claims publication semantics.
//! * `Arc` is `std::sync::Arc` (leak checking is not modeled).
//! * A mutex guard must not be held across a scheduling point; the
//!   shim detects this and fails the model rather than exploring it.
//!
//! Outside [`model`] every type degrades to its `std` behavior, so a
//! crate compiled with `--cfg loom` still runs its ordinary tests.

mod rt;

pub mod sync;
pub mod thread;

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use rt::{next_prefix, Registry};

/// Hard cap on explored executions; a model that exceeds it is too
/// big to check exhaustively and should be shrunk.
const MAX_EXECUTIONS: u64 = 250_000;

/// Run `f` under every schedule the serializing scheduler can
/// produce. Panics (with the failing schedule) if any execution
/// panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom shim: model exceeded {MAX_EXECUTIONS} executions; shrink the model"
        );
        let reg = Registry::new(prefix.clone());
        let root_reg = Arc::clone(&reg);
        let root_f = Arc::clone(&f);
        let root = std::thread::Builder::new()
            .name("loom-0".into())
            .spawn(move || {
                rt::set_current(&root_reg, 0);
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| root_f()));
                let failure = out.err().and_then(|p| rt::panic_message(&*p));
                root_reg.thread_finished(0, failure);
            })
            .expect("loom shim: cannot spawn model root thread");
        reg.wait_all_finished();
        for h in reg.take_handles() {
            let _ = h.join();
        }
        let _ = root.join();
        let (trace, failure) = reg.outcome();
        if let Some(msg) = failure {
            panic!("loom model failure under schedule {trace:?}: {msg}");
        }
        match next_prefix(&trace) {
            Some(p) => prefix = p,
            None => break,
        }
    }
    if std::env::var_os("LOOM_LOG").is_some() {
        eprintln!("loom shim: explored {executions} executions");
    }
}
