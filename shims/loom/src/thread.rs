//! Controlled threads: spawn/join under the model scheduler, plain
//! `std::thread` outside a model.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::rt;

enum Inner<T> {
    /// A thread spawned inside [`crate::model`]; the result slot is
    /// filled by the controlled thread before it reports finished.
    Model {
        id: usize,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
    /// A plain thread spawned outside any model.
    Std(std::thread::JoinHandle<T>),
}

/// Handle to a spawned thread (model-aware analogue of
/// [`std::thread::JoinHandle`]).
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Model { id, .. } => f.debug_struct("JoinHandle").field("id", id).finish(),
            Inner::Std(_) => f.debug_struct("JoinHandle").field("id", &"std").finish(),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and take its result. Inside a
    /// model this is a scheduling point that blocks the caller (in
    /// model time) until the target has finished.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { id, result } => {
                let (reg, my) =
                    rt::current().expect("loom JoinHandle::join called from outside the model");
                reg.join_on(my, id);
                let out = result
                    .lock()
                    .expect("loom join result lock")
                    .take()
                    .expect("joined thread left no result");
                out
            }
        }
    }
}

/// Spawn a thread. Inside a model the child becomes a controlled
/// thread (and may be scheduled before the parent resumes); outside,
/// this is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
        Some((reg, my)) => {
            let id = reg.register_thread();
            let result = Arc::new(Mutex::new(None));
            let result_slot = Arc::clone(&result);
            let child_reg = Arc::clone(&reg);
            let handle = std::thread::Builder::new()
                .name(format!("loom-{id}"))
                .spawn(move || {
                    rt::set_current(&child_reg, id);
                    if !child_reg.wait_until_active(id) {
                        // Execution aborted before this thread ran.
                        child_reg.thread_finished(id, None);
                        return;
                    }
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            *result_slot.lock().expect("loom join result lock") = Some(Ok(v));
                            child_reg.thread_finished(id, None);
                        }
                        Err(payload) => {
                            let failure = rt::panic_message(&payload);
                            *result_slot.lock().expect("loom join result lock") =
                                Some(Err(payload));
                            child_reg.thread_finished(id, failure);
                        }
                    }
                })
                .expect("loom shim: cannot spawn controlled thread");
            reg.store_handle(handle);
            // Scheduling point: the child is now runnable and may be
            // picked before the parent continues.
            reg.switch(my);
            JoinHandle {
                inner: Inner::Model { id, result },
            }
        }
    }
}

/// A bare scheduling point (any other runnable thread may run).
pub fn yield_now() {
    rt::schedule_point();
}
