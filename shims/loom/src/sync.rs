//! Model-aware synchronization primitives.
//!
//! Atomic operations and `Mutex::lock` are *scheduling points*: under
//! [`crate::model`] the scheduler may run any other thread first, so
//! every interleaving of these operations gets explored. Memory
//! `Ordering` arguments are accepted for API compatibility but the
//! exploration itself is sequentially consistent (see the crate docs
//! for why that is, and what compensates for it).

pub use std::sync::Arc;

use crate::rt;

/// Guard type re-export: the shim's mutex is a scheduling-point
/// wrapper over [`std::sync::Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutex whose `lock` is a scheduling point.
///
/// The shim requires the guard to be dropped before the next
/// scheduling point (execution is serialized, so a guard held across
/// one would deadlock the real lock); violating that fails the model
/// with a diagnostic instead of hanging.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Fresh unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquire the lock (scheduling point).
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        rt::schedule_point();
        match self.0.try_lock() {
            Ok(guard) => Ok(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Err(e),
            Err(std::sync::TryLockError::WouldBlock) => {
                assert!(
                    !rt::in_model(),
                    "loom shim: mutex guard held across a scheduling point — \
                     unsupported by the vendored model checker"
                );
                self.0.lock()
            }
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> std::sync::LockResult<T> {
        self.0.into_inner()
    }
}

pub mod atomic {
    //! Atomic types whose every operation is a scheduling point.

    pub use std::sync::atomic::Ordering;

    use crate::rt;
    use std::sync::atomic::Ordering::SeqCst;

    macro_rules! atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:path, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Fresh atomic holding `value`.
                pub fn new(value: $prim) -> Self {
                    Self(<$std>::new(value))
                }

                /// Atomic load (scheduling point; `_order` accepted,
                /// exploration is sequentially consistent).
                pub fn load(&self, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.load(SeqCst)
                }

                /// Atomic store (scheduling point).
                pub fn store(&self, value: $prim, _order: Ordering) {
                    rt::schedule_point();
                    self.0.store(value, SeqCst);
                }

                /// Atomic swap (scheduling point).
                pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.swap(value, SeqCst)
                }

                /// Atomic add, returning the previous value
                /// (scheduling point).
                pub fn fetch_add(&self, value: $prim, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.fetch_add(value, SeqCst)
                }

                /// Atomic subtract, returning the previous value
                /// (scheduling point).
                pub fn fetch_sub(&self, value: $prim, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.fetch_sub(value, SeqCst)
                }

                /// Atomic compare-exchange (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    rt::schedule_point();
                    self.0.compare_exchange(current, new, SeqCst, SeqCst)
                }

                /// Weak variant; the shim never fails spuriously.
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consume the atomic, returning the inner value.
                pub fn into_inner(self) -> $prim {
                    self.0.into_inner()
                }
            }
        };
    }

    atomic_int!(
        /// Model-aware [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    atomic_int!(
        /// Model-aware [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    atomic_int!(
        /// Model-aware [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );

    /// Model-aware [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// Fresh atomic holding `value`.
        pub fn new(value: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(value))
        }

        /// Atomic load (scheduling point).
        pub fn load(&self, _order: Ordering) -> bool {
            rt::schedule_point();
            self.0.load(SeqCst)
        }

        /// Atomic store (scheduling point).
        pub fn store(&self, value: bool, _order: Ordering) {
            rt::schedule_point();
            self.0.store(value, SeqCst);
        }

        /// Atomic swap (scheduling point).
        pub fn swap(&self, value: bool, _order: Ordering) -> bool {
            rt::schedule_point();
            self.0.swap(value, SeqCst)
        }

        /// Atomic compare-exchange (scheduling point).
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            rt::schedule_point();
            self.0.compare_exchange(current, new, SeqCst, SeqCst)
        }

        /// Consume the atomic, returning the inner value.
        pub fn into_inner(self) -> bool {
            self.0.into_inner()
        }
    }
}
