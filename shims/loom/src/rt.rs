//! The serializing scheduler behind [`crate::model`].
//!
//! One [`Registry`] exists per execution. Every controlled thread is
//! a real OS thread, but the registry keeps exactly one *active* at a
//! time: threads park on a condvar and hand control to each other at
//! scheduling points ([`schedule_point`], spawn, join, finish). At a
//! point where more than one thread is runnable, the choice is taken
//! from the exploration `prefix` (depth-first replay) and recorded in
//! `trace`, so [`next_prefix`] can enumerate the next unexplored
//! schedule after the execution completes.

use std::any::Any;
use std::cell::RefCell;
use std::panic::resume_unwind;
use std::sync::{Arc, Condvar, Mutex};

/// Payload used to unwind controlled threads when an execution aborts
/// early (failure elsewhere or deadlock). Not a model failure itself.
struct Abort;

/// Scheduling status of one controlled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedOnJoin(usize),
    Finished,
}

#[derive(Debug)]
struct SchedState {
    statuses: Vec<Status>,
    /// Id of the one thread allowed to run (`usize::MAX` once all
    /// have finished).
    active: usize,
    /// Choices to replay, one per multi-way decision point.
    prefix: Vec<usize>,
    /// `(chosen index, number of runnable threads)` per multi-way
    /// decision point actually taken this execution.
    trace: Vec<(usize, usize)>,
    /// First failure observed (panic message or deadlock).
    failure: Option<String>,
    /// Once set, every parked thread unwinds instead of resuming.
    aborting: bool,
    /// OS handles of threads spawned inside the model, joined by the
    /// coordinator after the execution completes.
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Per-execution scheduler shared by all controlled threads.
#[derive(Debug)]
pub(crate) struct Registry {
    state: Mutex<SchedState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
}

/// Bind the calling OS thread to `reg` as controlled thread `id`.
pub(crate) fn set_current(reg: &Arc<Registry>, id: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(reg), id)));
}

/// The calling thread's registry binding, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Registry>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when called from inside a running model.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// A scheduling point: outside a model this is free; inside, control
/// may transfer to any other runnable thread.
pub(crate) fn schedule_point() {
    if let Some((reg, id)) = current() {
        reg.switch(id);
    }
}

/// Extract a printable message from a panic payload. `None` for the
/// internal [`Abort`] payload (an aborted thread is not a failure).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> Option<String> {
    if payload.downcast_ref::<Abort>().is_some() {
        return None;
    }
    Some(if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    })
}

fn abort_unwind() -> ! {
    resume_unwind(Box::new(Abort))
}

impl Registry {
    /// Fresh execution: one runnable thread (the root, id 0) and the
    /// schedule prefix to replay.
    pub(crate) fn new(prefix: Vec<usize>) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SchedState {
                statuses: vec![Status::Runnable],
                active: 0,
                prefix,
                trace: Vec::new(),
                failure: None,
                aborting: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Pick the next active thread among the runnable ones, consuming
    /// a prefix choice (and recording it) when the pick is not forced.
    fn pick_next(&self, st: &mut SchedState) {
        let runnable: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (*s == Status::Runnable).then_some(i))
            .collect();
        if runnable.is_empty() {
            if st.statuses.iter().all(|s| *s == Status::Finished) {
                st.active = usize::MAX;
            } else {
                st.failure
                    .get_or_insert_with(|| "deadlock: every live thread is blocked".to_string());
                st.aborting = true;
            }
        } else if runnable.len() == 1 {
            st.active = runnable[0];
        } else {
            let k = st.trace.len();
            let idx = st.prefix.get(k).copied().unwrap_or(0);
            if idx < runnable.len() {
                st.trace.push((idx, runnable.len()));
                st.active = runnable[idx];
            } else {
                // The replayed choice no longer fits: the model took a
                // different set of scheduling points than the execution
                // this prefix was derived from. Continuing would explore
                // a wrong/truncated schedule and could report a false
                // "all schedules pass", so fail the model instead.
                st.failure.get_or_insert_with(|| {
                    format!(
                        "non-deterministic model: replay expected at least {} runnable \
                         threads at decision {k}, found {}",
                        idx + 1,
                        runnable.len()
                    )
                });
                st.aborting = true;
            }
        }
        self.cv.notify_all();
    }

    /// The scheduling point: offer the scheduler a chance to run any
    /// other runnable thread, then park until re-activated.
    pub(crate) fn switch(&self, my: usize) {
        let mut st = self.state.lock().expect("loom scheduler lock");
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        self.pick_next(&mut st);
        loop {
            // Checked even when `active == my`: pick_next may raise an
            // abort (replay divergence) without transferring control,
            // and the caller must unwind rather than resume the model.
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            if st.active == my {
                return;
            }
            st = self.cv.wait(st).expect("loom scheduler lock");
        }
    }

    /// Register a new controlled thread; it starts runnable but does
    /// not run until the scheduler activates it.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().expect("loom scheduler lock");
        st.statuses.push(Status::Runnable);
        st.statuses.len() - 1
    }

    /// Keep a spawned thread's OS handle for the coordinator to join.
    pub(crate) fn store_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.state
            .lock()
            .expect("loom scheduler lock")
            .handles
            .push(handle);
    }

    /// Park a freshly spawned thread until its first activation.
    /// Returns `false` when the execution is aborting and the thread
    /// body must be skipped.
    pub(crate) fn wait_until_active(&self, my: usize) -> bool {
        let mut st = self.state.lock().expect("loom scheduler lock");
        loop {
            if st.aborting {
                return false;
            }
            if st.active == my {
                return true;
            }
            st = self.cv.wait(st).expect("loom scheduler lock");
        }
    }

    /// Block thread `my` until thread `target` has finished.
    pub(crate) fn join_on(&self, my: usize, target: usize) {
        let mut st = self.state.lock().expect("loom scheduler lock");
        loop {
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            if st.statuses[target] == Status::Finished {
                return;
            }
            st.statuses[my] = Status::BlockedOnJoin(target);
            self.pick_next(&mut st);
            while st.active != my {
                if st.aborting {
                    drop(st);
                    abort_unwind();
                }
                st = self.cv.wait(st).expect("loom scheduler lock");
            }
        }
    }

    /// Mark `my` finished, wake its joiners, record a failure if it
    /// panicked, and hand control onward.
    pub(crate) fn thread_finished(&self, my: usize, failure: Option<String>) {
        let mut st = self.state.lock().expect("loom scheduler lock");
        st.statuses[my] = Status::Finished;
        for s in &mut st.statuses {
            if *s == Status::BlockedOnJoin(my) {
                *s = Status::Runnable;
            }
        }
        if let Some(msg) = failure {
            st.failure.get_or_insert(msg);
            st.aborting = true;
        } else if !st.aborting {
            self.pick_next(&mut st);
        }
        // Wake unconditionally: on the aborting drain path pick_next is
        // skipped, but the coordinator in `wait_all_finished` (and any
        // parked thread still draining) must re-check after every
        // finish, or a failing model hangs instead of reporting.
        self.cv.notify_all();
    }

    /// Coordinator: block until every controlled thread has finished.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.state.lock().expect("loom scheduler lock");
        while !st.statuses.iter().all(|s| *s == Status::Finished) {
            st = self.cv.wait(st).expect("loom scheduler lock");
        }
    }

    /// Coordinator: take the OS handles of the execution's threads.
    pub(crate) fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.state.lock().expect("loom scheduler lock").handles)
    }

    /// Coordinator: the execution's recorded schedule and failure.
    pub(crate) fn outcome(&self) -> (Vec<(usize, usize)>, Option<String>) {
        let st = self.state.lock().expect("loom scheduler lock");
        (st.trace.clone(), st.failure.clone())
    }
}

/// Depth-first successor of an executed schedule: bump the deepest
/// decision that still has an unexplored alternative, drop everything
/// after it. `None` once the whole tree has been visited.
pub(crate) fn next_prefix(trace: &[(usize, usize)]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let (chosen, arity) = trace[i];
        if chosen + 1 < arity {
            let mut p: Vec<usize> = trace[..=i].iter().map(|&(c, _)| c).collect();
            p[i] += 1;
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::next_prefix;

    #[test]
    fn dfs_successor_enumerates_the_whole_tree() {
        // A 2-level binary tree: 0,0 -> 0,1 -> 1,0 -> 1,1 -> done.
        assert_eq!(next_prefix(&[(0, 2), (0, 2)]), Some(vec![0, 1]));
        assert_eq!(next_prefix(&[(0, 2), (1, 2)]), Some(vec![1]));
        assert_eq!(next_prefix(&[(1, 2), (0, 2)]), Some(vec![1, 1]));
        assert_eq!(next_prefix(&[(1, 2), (1, 2)]), None);
        // Forced decisions (arity 1) are never bumped.
        assert_eq!(next_prefix(&[(0, 1)]), None);
        assert_eq!(next_prefix(&[]), None);
    }
}
