//! Self-checks for the vendored model checker: it must pass correct
//! protocols, *fail* racy ones, and provably explore more than one
//! schedule.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc as StdArc;

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// Run `f` as a model and return the failure message, if any.
fn model_failure(f: impl Fn() + Send + Sync + 'static) -> Option<String> {
    catch_unwind(AssertUnwindSafe(|| loom::model(f)))
        .err()
        .map(|p| {
            p.downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "<non-string>".to_string())
        })
}

#[test]
fn atomic_increments_never_lose_updates() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn non_atomic_read_modify_write_is_caught() {
    // The classic lost update: load, then store, in two threads. Some
    // schedule interleaves the loads before either store, so the
    // final count is 1 — the checker must find it.
    let failure = model_failure(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let v = n.load(Ordering::Relaxed);
                    n.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    });
    let msg = failure.expect("the lost-update schedule must be found");
    assert!(msg.contains("lost update"), "{msg}");
}

#[test]
fn mutex_guarded_compound_update_is_sound() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

#[test]
fn both_orders_of_an_unsynchronized_read_are_explored() {
    // Parent reads a flag the child sets, without joining first: the
    // model must visit schedules where the read sees 0 *and* where it
    // sees 1. Observations accumulate in a plain std atomic that
    // lives outside the model.
    let seen = StdArc::new(StdAtomicUsize::new(0));
    let seen_in = StdArc::clone(&seen);
    loom::model(move || {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        let observed = flag.load(Ordering::Acquire);
        seen_in.fetch_or(1 << usize::from(observed), StdOrdering::Relaxed);
        h.join().unwrap();
    });
    assert_eq!(
        seen.load(StdOrdering::Relaxed),
        0b11,
        "exploration must cover both schedules"
    );
}

#[test]
fn join_establishes_completion() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        h.join().unwrap();
        assert!(flag.load(Ordering::Acquire), "join orders the store first");
    });
}

#[test]
fn guard_held_across_a_scheduling_point_is_rejected() {
    let failure = model_failure(|| {
        let m = Arc::new(Mutex::new(0usize));
        let a = Arc::new(AtomicUsize::new(0));
        let m2 = Arc::clone(&m);
        let a2 = Arc::clone(&a);
        let h = thread::spawn(move || {
            let guard = m2.lock().unwrap();
            // Scheduling point while the guard is live: the parent's
            // lock below can now observe a held mutex.
            a2.load(Ordering::Relaxed);
            drop(guard);
        });
        drop(m.lock().unwrap());
        h.join().unwrap();
    });
    let msg = failure.expect("holding a guard across a scheduling point must fail the model");
    assert!(msg.contains("scheduling point"), "{msg}");
}

#[test]
fn spawned_threads_return_values_through_join() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(7));
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || n2.load(Ordering::Relaxed) + 1);
        assert_eq!(h.join().unwrap(), 8);
    });
}

#[test]
fn failure_with_a_parked_spawned_thread_reports_promptly() {
    // Regression: the root fails while a spawned thread is still
    // parked waiting for its first activation. The aborting drain
    // path must still wake the coordinator after every thread
    // finishes, or the model hangs instead of reporting. Run the
    // model on a helper thread with a timeout so a regression fails
    // the suite rather than wedging it.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let failure = model_failure(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let _h = thread::spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            panic!("boom");
        });
        let _ = tx.send(failure);
    });
    let failure = rx
        .recv_timeout(std::time::Duration::from_secs(60))
        .expect("model with a parked spawned thread hung instead of reporting");
    let msg = failure.expect("a root panic must fail the model");
    assert!(msg.contains("boom"), "{msg}");
}

#[test]
fn non_deterministic_model_is_reported_not_misexplored() {
    // The model's scheduling points depend on state outside the model
    // (an execution counter): early executions spawn two children,
    // later ones spawn one and take an extra atomic step. Depth-first
    // replay eventually presents a recorded choice that no longer fits
    // the shrunken decision; that must surface as a model failure, not
    // a silently truncated exploration reported as "all schedules
    // pass".
    let execs = StdArc::new(StdAtomicUsize::new(0));
    let execs_in = StdArc::clone(&execs);
    let failure = model_failure(move || {
        let e = execs_in.fetch_add(1, StdOrdering::Relaxed);
        if e < 4 {
            let a = thread::spawn(|| {});
            let b = thread::spawn(|| {});
            drop((a, b));
        } else {
            let n = Arc::new(AtomicUsize::new(0));
            let _c = thread::spawn(|| {});
            n.load(Ordering::Relaxed);
        }
    });
    let msg = failure.expect("a non-deterministic model must fail, not pass");
    assert!(msg.contains("non-deterministic"), "{msg}");
}

#[test]
fn types_degrade_to_std_outside_a_model() {
    let n = AtomicUsize::new(1);
    assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(n.load(Ordering::SeqCst), 3);
    let m = Mutex::new(5usize);
    *m.lock().unwrap() += 1;
    assert_eq!(m.into_inner().unwrap(), 6);
    let h = thread::spawn(|| 42usize);
    assert_eq!(h.join().unwrap(), 42);
}
