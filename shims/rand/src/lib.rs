//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *minimal* surface of `rand` that aalign
//! actually uses: [`StdRng`] (a xoshiro256++ generator, seeded via
//! SplitMix64), the [`Rng`] / [`RngExt`] / [`SeedableRng`] traits, and
//! uniform sampling over integer and float ranges plus Bernoulli
//! draws. The generator is deterministic for a given seed, which is
//! all the synthetic-data and test code relies on.

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: Rng> RngExt for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_splitmix(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_splitmix(seed)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let w = rng.random_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }
}
